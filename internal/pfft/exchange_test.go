package pfft

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exchange"
	"repro/internal/metrics"
	"repro/internal/mpi"
)

// The fused and chunked-fused exchanges must be bitwise identical to
// the staged pack → all-to-all → unpack triple — for every rank count
// and team size, on full forward+inverse transforms. n=28 is divisible
// by every tested P.
func TestSlabRealExchangeStrategiesBitwiseIdentity(t *testing.T) {
	const n = 28
	for _, p := range []int{1, 2, 4, 7} {
		p := p
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			if err := mpi.TryRun(p, func(c *mpi.Comm) {
				ref := NewSlabRealStrategy(c, n, 1, exchange.Staged)
				defer ref.Close()
				fl, pl := ref.FourierLen(), ref.PhysicalLen()

				rng := rand.New(rand.NewSource(int64(42 + c.Rank())))
				physIn := make([]float64, pl)
				for i := range physIn {
					physIn[i] = rng.NormFloat64()
				}
				refFour := make([]complex128, fl)
				refPhys := make([]float64, pl)
				scratch := make([]float64, pl)
				copy(scratch, physIn)
				ref.PhysicalToFourier(refFour, scratch)
				fourScratch := make([]complex128, fl)
				copy(fourScratch, refFour)
				ref.FourierToPhysical(refPhys, fourScratch)

				for _, st := range []exchange.Strategy{exchange.Fused, exchange.ChunkedFused} {
					for _, w := range []int{1, 2, 4, 7} {
						f := NewSlabRealStrategy(c, n, w, st)
						four := make([]complex128, fl)
						phys := make([]float64, pl)
						copy(phys, physIn)
						f.PhysicalToFourier(four, phys)
						for i := range four {
							if four[i] != refFour[i] {
								panic(fmt.Sprintf("rank %d %s workers=%d: forward differs at %d: %v vs %v",
									c.Rank(), st, w, i, four[i], refFour[i]))
							}
						}
						out := make([]float64, pl)
						f.FourierToPhysical(out, four)
						for i := range out {
							if out[i] != refPhys[i] {
								panic(fmt.Sprintf("rank %d %s workers=%d: inverse differs at %d: %v vs %v",
									c.Rank(), st, w, i, out[i], refPhys[i]))
							}
						}
						f.Close()
					}
				}
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Autotuned plans must pin a concrete strategy, agree on it across
// ranks, and expose it through the exchange.strategy gauge.
func TestSlabRealAutotunePinsConcreteStrategy(t *testing.T) {
	const n, p = 16, 4
	reg := metrics.NewRegistry()
	reg.SetOn(true)
	if err := mpi.RunWith(p, reg, func(c *mpi.Comm) {
		f := NewSlabRealWorkers(c, n, 2)
		defer f.Close()
		st := f.Strategy()
		if st == exchange.Auto {
			panic("autotune left strategy at Auto")
		}
		// Cross-rank agreement: allgather the codes and compare.
		codes := make([]float64, p)
		mpi.Allgather(c, []float64{st.Code()}, codes)
		for r, code := range codes {
			if code != st.Code() {
				panic(fmt.Sprintf("rank %d pinned %v but rank %d pinned code %v", c.Rank(), st, r, code))
			}
		}
		if g := c.Metrics().GaugeRank("exchange.strategy", c.Rank()).Value(); g != st.Code() {
			panic(fmt.Sprintf("exchange.strategy gauge = %v, want %v", g, st.Code()))
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// Fused steady state must stay allocation-free: the gather callbacks
// and team bodies are prebuilt at plan time, and ExchangePlan.Do is a
// slice store plus two barrier waits.
func TestSlabRealFusedSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("N=64 transform loop in -short mode")
	}
	const n, p, runs = 64, 4, 10
	for _, st := range []exchange.Strategy{exchange.Fused, exchange.ChunkedFused} {
		st := st
		t.Run(st.String(), func(t *testing.T) {
			if err := mpi.TryRun(p, func(c *mpi.Comm) {
				f := NewSlabRealStrategy(c, n, 1, st)
				defer f.Close()
				four := make([]complex128, f.FourierLen())
				phys := make([]float64, f.PhysicalLen())
				for i := range phys {
					phys[i] = float64(i%13) * 0.25
				}
				cycle := func() {
					f.PhysicalToFourier(four, phys)
					f.FourierToPhysical(phys, four)
				}
				for i := 0; i < 3; i++ {
					cycle()
				}
				if c.Rank() == 0 {
					avg := testing.AllocsPerRun(runs, cycle)
					if avg != 0 {
						panic(fmt.Sprintf("%s steady state allocates %.2f per cycle", st, avg))
					}
				} else {
					for i := 0; i < runs+1; i++ {
						cycle()
					}
				}
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The isolated ExchangeYZ hook (what the bench harness drives) must
// produce the same physical-side layout for every strategy.
func TestExchangeYZStrategyIdentity(t *testing.T) {
	const n, p = 28, 4
	if err := mpi.TryRun(p, func(c *mpi.Comm) {
		ref := NewSlabRealStrategy(c, n, 2, exchange.Staged)
		defer ref.Close()
		fl := ref.FourierLen()
		four := make([]complex128, fl)
		rng := rand.New(rand.NewSource(int64(9 + c.Rank())))
		for i := range four {
			four[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		ref.ExchangeYZ(four)
		want := make([]complex128, len(ref.mid))
		copy(want, ref.mid)

		for _, st := range []exchange.Strategy{exchange.Fused, exchange.ChunkedFused} {
			f := NewSlabRealStrategy(c, n, 2, st)
			f.ExchangeYZ(four)
			for i := range want {
				if f.mid[i] != want[i] {
					panic(fmt.Sprintf("rank %d %s: ExchangeYZ differs at %d", c.Rank(), st, i))
				}
			}
			f.Close()
		}
	}); err != nil {
		t.Fatal(err)
	}
}
