package pfft

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mpi"
)

// Worker-team transforms must be bitwise identical to the single-worker
// transform for any team size: the plane-level work units are
// independent and run on identical plans, so parallelism must not
// change a single bit of output.
func TestSlabRealWorkersBitwiseIdentity(t *testing.T) {
	const n, p = 16, 2
	mpi.Run(p, func(c *mpi.Comm) {
		ref := NewSlabRealWorkers(c, n, 1)
		defer ref.Close()
		fl, pl := ref.FourierLen(), ref.PhysicalLen()

		rng := rand.New(rand.NewSource(int64(1000 + c.Rank())))
		physIn := make([]float64, pl)
		for i := range physIn {
			physIn[i] = rng.NormFloat64()
		}

		refFour := make([]complex128, fl)
		refPhys := make([]float64, pl)
		copyPhys := make([]float64, pl)
		copy(copyPhys, physIn)
		ref.PhysicalToFourier(refFour, copyPhys)
		fourScratch := make([]complex128, fl)
		copy(fourScratch, refFour)
		ref.FourierToPhysical(refPhys, fourScratch)

		for _, w := range []int{1, 2, 4, 7} {
			f := NewSlabRealWorkers(c, n, w)
			four := make([]complex128, fl)
			phys := make([]float64, pl)
			copy(phys, physIn)
			f.PhysicalToFourier(four, phys)
			for i := range four {
				if four[i] != refFour[i] {
					panic(fmt.Sprintf("rank %d workers=%d: forward differs at %d: %v vs %v",
						c.Rank(), w, i, four[i], refFour[i]))
				}
			}
			outPhys := make([]float64, pl)
			f.FourierToPhysical(outPhys, four)
			for i := range outPhys {
				if outPhys[i] != refPhys[i] {
					panic(fmt.Sprintf("rank %d workers=%d: inverse differs at %d: %v vs %v",
						c.Rank(), w, i, outPhys[i], refPhys[i]))
				}
			}
			f.Close()
		}
	})
}

// The acceptance gate of the zero-allocation hot path: a steady-state
// slab forward+inverse at N=64, P=4 performs 0 heap allocations after
// warmup. Rank 0 measures; peers execute the same collective sequence
// runs+1 times to match AllocsPerRun's execution count.
func TestSlabRealSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("N=64 transform loop in -short mode")
	}
	const n, p, runs = 64, 4, 10
	mpi.Run(p, func(c *mpi.Comm) {
		f := NewSlabRealWorkers(c, n, 1)
		defer f.Close()
		four := make([]complex128, f.FourierLen())
		phys := make([]float64, f.PhysicalLen())
		for i := range phys {
			phys[i] = float64(i%13) * 0.25
		}
		cycle := func() {
			f.PhysicalToFourier(four, phys)
			f.FourierToPhysical(phys, four)
		}
		for i := 0; i < 3; i++ {
			cycle() // warm up: metric handles, watchdog freelist, map growth
		}
		if c.Rank() == 0 {
			avg := testing.AllocsPerRun(runs, cycle)
			if avg != 0 {
				panic(fmt.Sprintf("steady-state forward+inverse allocates %.2f per cycle", avg))
			}
		} else {
			for i := 0; i < runs+1; i++ {
				cycle()
			}
		}
	})
}

// Round trip through the worker-team path must still reconstruct the
// input (normalization check independent of the identity test).
func TestSlabRealWorkersRoundTrip(t *testing.T) {
	const n, p, w = 8, 2, 3
	mpi.Run(p, func(c *mpi.Comm) {
		f := NewSlabRealWorkers(c, n, w)
		defer f.Close()
		phys := make([]float64, f.PhysicalLen())
		orig := make([]float64, f.PhysicalLen())
		rng := rand.New(rand.NewSource(int64(7 + c.Rank())))
		for i := range phys {
			phys[i] = rng.NormFloat64()
			orig[i] = phys[i]
		}
		four := make([]complex128, f.FourierLen())
		f.PhysicalToFourier(four, phys)
		out := make([]float64, f.PhysicalLen())
		f.FourierToPhysical(out, four)
		for i := range out {
			if d := out[i] - orig[i]; d > 1e-10 || d < -1e-10 {
				panic(fmt.Sprintf("rank %d: round trip differs at %d: %v vs %v",
					c.Rank(), i, out[i], orig[i]))
			}
		}
	})
}
