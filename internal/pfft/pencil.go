package pfft

import (
	"fmt"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/transpose"
)

// PencilC2C performs distributed complex 3D FFTs on the 2D pencil
// decomposition of the synchronous CPU baseline: two all-to-alls per
// transform, on the y-group communicator (size Pr, completes x↔y) and
// the z-group communicator (size Pc, completes y↔z).
type PencilC2C struct {
	commY *mpi.Comm // size Pr: ranks sharing a z range
	commZ *mpi.Comm // size Pc: ranks sharing an x range after the row transpose
	g     grid.Pencil2D
	n     int
	bx    *fft.Batch // x on layout A, contiguous
	by    *fft.Batch // y on layout B, contiguous
	bz    *fft.Batch // z on layout C, contiguous
	packR []complex128
	recvR []complex128
	packC []complex128
	recvC []complex128
	layB  []complex128
}

// NewPencilC2C builds plans for an N³ transform. commY must have size
// Pr and commZ size Pc; the caller typically obtains them from
// Comm.CartGrid.
func NewPencilC2C(commY, commZ *mpi.Comm, n int) *PencilC2C {
	pr, pc := commY.Size(), commZ.Size()
	g := grid.NewPencil2D(n, pr, pc, commY.Rank(), commZ.Rank())
	my, mz, mx, my2 := g.MY(), g.MZ(), g.MX(), g.MY2()
	return &PencilC2C{
		commY: commY, commZ: commZ, g: g, n: n,
		bx:    fft.NewBatch(n, my*mz, 1, n, 1, n),
		by:    fft.NewBatch(n, mx*mz, 1, n, 1, n),
		bz:    fft.NewBatch(n, mx*my2, 1, n, 1, n),
		packR: make([]complex128, mz*my*n),
		recvR: make([]complex128, mz*my*n),
		packC: make([]complex128, mz*mx*n),
		recvC: make([]complex128, mz*mx*n),
		layB:  make([]complex128, mz*mx*n),
	}
}

// Geometry reports the pencil decomposition in use.
func (f *PencilC2C) Geometry() grid.Pencil2D { return f.g }

// LocalLen is the number of complex elements per rank (identical in
// every layout since Pr·Pc | N³).
func (f *PencilC2C) LocalLen() int { return f.g.MY() * f.g.MZ() * f.n }

// PhysicalToFourier transforms the physical x-pencil layout A
// in=[mz][my][nx] into the Fourier z-pencil layout C out=[my2][mx][nz],
// unnormalized. in is consumed as scratch.
func (f *PencilC2C) PhysicalToFourier(out, in []complex128) {
	f.check(out, in)
	n := f.n
	g := f.g
	f.bx.Forward(in, in)
	transpose.PackRowAB(f.packR, in, n, g.MY(), g.MZ(), g.Pr)
	mpi.Alltoall(f.commY, f.packR, f.recvR)
	transpose.UnpackRowAB(f.layB, f.recvR, n, g.MX(), g.MZ(), g.Pr)
	f.by.Forward(f.layB, f.layB)
	transpose.PackColBC(f.packC, f.layB, n, g.MX(), g.MZ(), g.Pc)
	mpi.Alltoall(f.commZ, f.packC, f.recvC)
	transpose.UnpackColBC(out, f.recvC, n, g.MX(), g.MY2(), g.Pc)
	f.bz.Forward(out, out)
}

// FourierToPhysical transforms layout C in=[my2][mx][nz] back to the
// physical layout A out=[mz][my][nx], applying the 1/N³ normalization.
// in is consumed as scratch.
func (f *PencilC2C) FourierToPhysical(out, in []complex128) {
	f.check(out, in)
	n := f.n
	g := f.g
	f.bz.Inverse(in, in)
	transpose.PackColCB(f.packC, in, n, g.MX(), g.MY2(), g.Pc)
	mpi.Alltoall(f.commZ, f.packC, f.recvC)
	transpose.UnpackColCB(f.layB, f.recvC, n, g.MX(), g.MZ(), g.Pc)
	f.by.Inverse(f.layB, f.layB)
	transpose.PackRowBA(f.packR, f.layB, n, g.MX(), g.MZ(), g.Pr)
	mpi.Alltoall(f.commY, f.packR, f.recvR)
	transpose.UnpackRowBA(out, f.recvR, n, g.MY(), g.MZ(), g.Pr)
	f.bx.Inverse(out, out)
}

func (f *PencilC2C) check(out, in []complex128) {
	if len(out) != f.LocalLen() || len(in) != f.LocalLen() {
		panic(fmt.Sprintf("pfft: pencil buffers need %d elements, got out %d in %d",
			f.LocalLen(), len(out), len(in)))
	}
}
