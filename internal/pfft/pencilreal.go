package pfft

import (
	"fmt"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// PencilRealRef is the reference real-field transform on the 2D
// pencil decomposition — the structure of the synchronous CPU
// production code of Yeung et al. [23] that Table 3 benchmarks
// against, kept as an independently-derived cross-check for the
// production PencilReal engine (it allocates per call and transforms
// in x, y, z order, so it is numerically but not bitwise comparable).
// Real data makes the x extent n/2+1 after the r2c transform, which
// does not divide evenly among the row groups; like the production
// codes, the row transpose therefore uses variable-count exchanges
// (Alltoallv) over near-equal x spans.
//
// Layouts (x fastest unless stated):
//
//	physical A: [mz][my][nx]   real,   x complete
//	spectral B: [mz][wx][ny]   complex, y complete & fastest
//	spectral C: [my2][wx][nz]  complex, z complete & fastest
//
// with my = n/Pr, mz = n/Pc, my2 = n/Pc and wx this rank's share of
// the nxh = n/2+1 half-spectrum bins.
type PencilRealRef struct {
	commY *mpi.Comm // size Pr: completes x↔y
	commZ *mpi.Comm // size Pc: completes y↔z
	n     int
	nxh   int
	pr    int
	pc    int
	my    int
	mz    int
	my2   int
	xsp   []span // x spans per row-group member

	bx *fft.RealBatch // x r2c/c2r on layout A rows
	by *fft.Batch     // y on layout B
	bz *fft.Batch     // z on layout C

	xspec []complex128 // [mz][my][nxh] after the x transform
	packR []complex128
	recvR []complex128
	layB  []complex128
	packC []complex128
	recvC []complex128
}

// span is a half-open range (local copy; core has its own).
type span struct{ lo, hi int }

func (s span) width() int { return s.hi - s.lo }

func splitSpan(total, parts int) []span {
	per, rem := total/parts, total%parts
	out := make([]span, parts)
	lo := 0
	for i := range out {
		w := per
		if i < rem {
			w++
		}
		out[i] = span{lo, lo + w}
		lo += w
	}
	return out
}

// NewPencilRealRef builds the transform. commY must have size Pr and
// commZ size Pc; Pr and Pc must divide N; N must be even.
func NewPencilRealRef(commY, commZ *mpi.Comm, n int) *PencilRealRef {
	if n%2 != 0 {
		panic(fmt.Sprintf("pfft: PencilRealRef requires even N, got %d", n))
	}
	pr, pc := commY.Size(), commZ.Size()
	g := grid.NewPencil2D(n, pr, pc, commY.Rank(), commZ.Rank())
	nxh := n/2 + 1
	f := &PencilRealRef{
		commY: commY, commZ: commZ, n: n, nxh: nxh, pr: pr, pc: pc,
		my: g.MY(), mz: g.MZ(), my2: g.MY2(),
		xsp: splitSpan(nxh, pr),
	}
	wx := f.wx()
	f.bx = fft.NewRealBatch(n, f.my*f.mz, 1, n, 1, nxh)
	f.by = fft.NewBatch(n, wx*f.mz, 1, n, 1, n)
	f.bz = fft.NewBatch(n, wx*f.my2, 1, n, 1, n)
	f.xspec = make([]complex128, f.mz*f.my*nxh)
	// The row exchange is uneven: forward it carries mz·my·nxh total,
	// reverse it carries pr·mz·my·wx, which exceeds the forward volume
	// when pr·wx > nxh (uneven split). Size for the larger of the two.
	rowBuf := max(f.mz*f.my*nxh, pr*f.mz*f.my*wxMax(f.xsp))
	f.packR = make([]complex128, rowBuf)
	f.recvR = make([]complex128, rowBuf)
	f.layB = make([]complex128, f.mz*wx*n)
	f.packC = make([]complex128, f.mz*wx*n)
	f.recvC = make([]complex128, f.mz*wx*n)
	return f
}

func wxMax(spans []span) int {
	m := 0
	for _, s := range spans {
		if s.width() > m {
			m = s.width()
		}
	}
	return m
}

// wx is this rank's half-spectrum share.
func (f *PencilRealRef) wx() int { return f.xsp[f.commY.Rank()].width() }

// PhysicalLen is the real element count of one local physical pencil.
func (f *PencilRealRef) PhysicalLen() int { return f.mz * f.my * f.n }

// FourierLen is the complex element count of one local spectral pencil.
func (f *PencilRealRef) FourierLen() int { return f.my2 * f.wx() * f.n }

// PhysicalToFourier transforms phys (layout A, real) into four
// (layout C, complex), unnormalized.
func (f *PencilRealRef) PhysicalToFourier(four []complex128, phys []float64) {
	if len(phys) != f.PhysicalLen() || len(four) != f.FourierLen() {
		panic(fmt.Sprintf("pfft: pencil real wants %d/%d, got %d/%d",
			f.PhysicalLen(), f.FourierLen(), len(phys), len(four)))
	}
	n, nxh := f.n, f.nxh
	// 1) r2c along x: [mz][my][nx] real → [mz][my][nxh] complex.
	f.bx.Forward(f.xspec, phys)
	// 2) Row transpose (Alltoallv over uneven x spans): dest d gets
	// block [mz][my][w_d], x-major gathered.
	sendcounts := make([]int, f.pr)
	senddispls := make([]int, f.pr)
	off := 0
	for d, xs := range f.xsp {
		w := xs.width()
		for iz := 0; iz < f.mz; iz++ {
			for iy := 0; iy < f.my; iy++ {
				copy(f.packR[off+(iz*f.my+iy)*w:off+(iz*f.my+iy)*w+w],
					f.xspec[(iz*f.my+iy)*nxh+xs.lo:(iz*f.my+iy)*nxh+xs.hi])
			}
		}
		sendcounts[d] = f.mz * f.my * w
		senddispls[d] = off
		off += sendcounts[d]
	}
	wx := f.wx()
	recvcounts := make([]int, f.pr)
	recvdispls := make([]int, f.pr)
	roff := 0
	for s := 0; s < f.pr; s++ {
		recvcounts[s] = f.mz * f.my * wx
		recvdispls[s] = roff
		roff += recvcounts[s]
	}
	mpi.Alltoallv(f.commY, f.packR, sendcounts, senddispls,
		f.recvR[:roff], recvcounts, recvdispls)
	// 3) Unpack into layout B [mz][wx][ny] (y fastest): source s holds
	// y range [s·my,(s+1)·my).
	for s := 0; s < f.pr; s++ {
		blk := f.recvR[recvdispls[s]:]
		for iz := 0; iz < f.mz; iz++ {
			for iy := 0; iy < f.my; iy++ {
				for ix := 0; ix < wx; ix++ {
					f.layB[(iz*wx+ix)*n+s*f.my+iy] = blk[(iz*f.my+iy)*wx+ix]
				}
			}
		}
	}
	// 4) FFT along y.
	f.by.Forward(f.layB, f.layB)
	// 5) Column transpose (even counts): dest d gets y range
	// [d·my2,(d+1)·my2) as block [mz][wx][my2].
	bs := f.mz * wx * f.my2
	for d := 0; d < f.pc; d++ {
		for iz := 0; iz < f.mz; iz++ {
			for ix := 0; ix < wx; ix++ {
				copy(f.packC[d*bs+(iz*wx+ix)*f.my2:d*bs+(iz*wx+ix)*f.my2+f.my2],
					f.layB[(iz*wx+ix)*n+d*f.my2:(iz*wx+ix)*n+(d+1)*f.my2])
			}
		}
	}
	mpi.Alltoall(f.commZ, f.packC, f.recvC)
	// 6) Unpack into layout C [my2][wx][nz] (z fastest); source s holds
	// z range [s·mz,(s+1)·mz).
	for s := 0; s < f.pc; s++ {
		blk := f.recvC[s*bs:]
		for iz := 0; iz < f.mz; iz++ {
			for ix := 0; ix < wx; ix++ {
				for iy := 0; iy < f.my2; iy++ {
					four[(iy*wx+ix)*n+s*f.mz+iz] = blk[(iz*wx+ix)*f.my2+iy]
				}
			}
		}
	}
	// 7) FFT along z.
	f.bz.Forward(four, four)
}

// FourierToPhysical is the inverse sequence, with 1/N³ normalization.
func (f *PencilRealRef) FourierToPhysical(phys []float64, four []complex128) {
	if len(phys) != f.PhysicalLen() || len(four) != f.FourierLen() {
		panic(fmt.Sprintf("pfft: pencil real wants %d/%d, got %d/%d",
			f.PhysicalLen(), f.FourierLen(), len(phys), len(four)))
	}
	n, nxh := f.n, f.nxh
	wx := f.wx()
	f.bz.Inverse(four, four)
	// Reverse column transpose: pack [d][mz][wx][my2] from layout C.
	bs := f.mz * wx * f.my2
	for d := 0; d < f.pc; d++ {
		for iz := 0; iz < f.mz; iz++ {
			for ix := 0; ix < wx; ix++ {
				for iy := 0; iy < f.my2; iy++ {
					f.packC[d*bs+(iz*wx+ix)*f.my2+iy] = four[(iy*wx+ix)*n+d*f.mz+iz]
				}
			}
		}
	}
	mpi.Alltoall(f.commZ, f.packC, f.recvC)
	for s := 0; s < f.pc; s++ {
		blk := f.recvC[s*bs:]
		for iz := 0; iz < f.mz; iz++ {
			for ix := 0; ix < wx; ix++ {
				copy(f.layB[(iz*wx+ix)*n+s*f.my2:(iz*wx+ix)*n+(s+1)*f.my2],
					blk[(iz*wx+ix)*f.my2:(iz*wx+ix)*f.my2+f.my2])
			}
		}
	}
	f.by.Inverse(f.layB, f.layB)
	// Reverse row transpose (Alltoallv): dest d gets its y range as
	// block [mz][my][wx_mine].
	sendcounts := make([]int, f.pr)
	senddispls := make([]int, f.pr)
	off := 0
	for d := 0; d < f.pr; d++ {
		for iz := 0; iz < f.mz; iz++ {
			for iy := 0; iy < f.my; iy++ {
				for ix := 0; ix < wx; ix++ {
					f.packR[off+(iz*f.my+iy)*wx+ix] = f.layB[(iz*wx+ix)*n+d*f.my+iy]
				}
			}
		}
		sendcounts[d] = f.mz * f.my * wx
		senddispls[d] = off
		off += sendcounts[d]
	}
	recvcounts := make([]int, f.pr)
	recvdispls := make([]int, f.pr)
	roff := 0
	for s, xs := range f.xsp {
		recvcounts[s] = f.mz * f.my * xs.width()
		recvdispls[s] = roff
		roff += recvcounts[s]
	}
	mpi.Alltoallv(f.commY, f.packR[:off], sendcounts, senddispls,
		f.recvR[:roff], recvcounts, recvdispls)
	for s, xs := range f.xsp {
		w := xs.width()
		blk := f.recvR[recvdispls[s]:]
		for iz := 0; iz < f.mz; iz++ {
			for iy := 0; iy < f.my; iy++ {
				copy(f.xspec[(iz*f.my+iy)*nxh+xs.lo:(iz*f.my+iy)*nxh+xs.hi],
					blk[(iz*f.my+iy)*w:(iz*f.my+iy)*w+w])
			}
		}
	}
	f.bx.Inverse(phys, f.xspec)
}
