package pfft

import (
	"fmt"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/transpose"
)

// phaseMetrics are the per-rank phase histograms of the synchronous
// transform, matching the span classes of the paper's Fig 10 timeline:
// local FFT compute, pack (reordering into send blocks), the
// all-to-all itself, and unpack. The four sections tile each transform
// wall-to-wall, so their sums reconstruct the transform's wall time.
type phaseMetrics struct {
	fft    *metrics.Histogram
	pack   *metrics.Histogram
	a2a    *metrics.Histogram
	unpack *metrics.Histogram
}

func newPhaseMetrics(c *mpi.Comm) *phaseMetrics {
	r := c.Metrics()
	return &phaseMetrics{
		fft:    r.HistogramRank("phase.fft", c.Rank()),
		pack:   r.HistogramRank("phase.pack", c.Rank()),
		a2a:    r.HistogramRank("phase.a2a", c.Rank()),
		unpack: r.HistogramRank("phase.unpack", c.Rank()),
	}
}

// SlabC2C performs distributed complex 3D FFTs on a 1D slab
// decomposition. FourierToPhysical applies inverse transforms in the
// paper's y, z, x order (one all-to-all between y and z);
// PhysicalToFourier applies forward transforms in x, z, y order.
type SlabC2C struct {
	comm *mpi.Comm
	s    grid.Slab
	n    int
	by   *fft.Batch // y transforms on the Fourier-side slab (per z-plane)
	bz   *fft.Batch // z transforms on the physical-side slab (per y-plane)
	bx   *fft.Batch // x transforms on the physical-side slab (per y-plane)
	pack []complex128
	recv []complex128
}

// NewSlabC2C builds the plans and communication buffers for an N³
// transform over the ranks of comm.
func NewSlabC2C(comm *mpi.Comm, n int) *SlabC2C {
	s := grid.NewSlab(n, comm.Size(), comm.Rank())
	f := &SlabC2C{
		comm: comm,
		s:    s,
		n:    n,
		by:   fft.NewBatch(n, n, n, 1, n, 1), // along y, x fastest
		bz:   fft.NewBatch(n, n, n, 1, n, 1), // along z, x fastest
		bx:   fft.NewBatch(n, n, 1, n, 1, n), // along x, contiguous
		pack: make([]complex128, s.MZ()*n*n),
		recv: make([]complex128, s.MZ()*n*n),
	}
	return f
}

// Slab reports the decomposition geometry.
func (f *SlabC2C) Slab() grid.Slab { return f.s }

// LocalLen is the number of complex elements in one local slab.
func (f *SlabC2C) LocalLen() int { return f.s.MZ() * f.n * f.n }

// FourierToPhysical transforms the z-distributed Fourier slab
// four=[mz][ny][nx] into the y-distributed physical slab
// phys=[my][nz][nx], applying the 1/N³ normalization.
func (f *SlabC2C) FourierToPhysical(phys, four []complex128) {
	n, mz, my := f.n, f.s.MZ(), f.s.MY()
	f.checkLen(phys, four)
	// 1) inverse FFT along y, plane by plane.
	for iz := 0; iz < mz; iz++ {
		plane := four[iz*n*n : (iz+1)*n*n]
		f.by.Inverse(plane, plane)
	}
	// 2) pack y→z, all-to-all, unpack.
	transpose.PackYZ(f.pack, four, n, n, mz, f.comm.Size())
	mpi.Alltoall(f.comm, f.pack, f.recv)
	transpose.UnpackYZ(phys, f.recv, n, n, my, f.comm.Size())
	// 3) inverse FFT along z, then x, per y-plane.
	for iy := 0; iy < my; iy++ {
		plane := phys[iy*n*n : (iy+1)*n*n]
		f.bz.Inverse(plane, plane)
		f.bx.Inverse(plane, plane)
	}
}

// PhysicalToFourier transforms the y-distributed physical slab
// phys=[my][nz][nx] into the z-distributed Fourier slab
// four=[mz][ny][nx], unnormalized (the exact adjoint ordering x, z, y
// of FourierToPhysical).
func (f *SlabC2C) PhysicalToFourier(four, phys []complex128) {
	n, mz, my := f.n, f.s.MZ(), f.s.MY()
	f.checkLen(phys, four)
	for iy := 0; iy < my; iy++ {
		plane := phys[iy*n*n : (iy+1)*n*n]
		f.bx.Forward(plane, plane)
		f.bz.Forward(plane, plane)
	}
	transpose.PackZY(f.pack, phys, n, n, my, f.comm.Size())
	mpi.Alltoall(f.comm, f.pack, f.recv)
	transpose.UnpackZY(four, f.recv, n, n, mz, f.comm.Size())
	for iz := 0; iz < mz; iz++ {
		plane := four[iz*n*n : (iz+1)*n*n]
		f.by.Forward(plane, plane)
	}
}

func (f *SlabC2C) checkLen(phys, four []complex128) {
	if len(phys) != f.LocalLen() || len(four) != f.LocalLen() {
		panic(fmt.Sprintf("pfft: slab buffers need %d elements, got phys %d four %d",
			f.LocalLen(), len(phys), len(four)))
	}
}

// SlabReal is the DNS transform pair: real physical fields, conjugate-
// symmetric half-spectra (nxh = n/2+1 in x) in Fourier space.
type SlabReal struct {
	comm *mpi.Comm
	s    grid.Slab
	n    int
	nxh  int
	by   *fft.Batch     // along y on [mz][ny][nxh]
	bz   *fft.Batch     // along z on [my][nz][nxh]
	bx   *fft.RealBatch // along x: half-spectrum ↔ real line
	pack []complex128
	recv []complex128
	mid  []complex128 // [my][nz][nxh] intermediate
	met  *phaseMetrics
}

// NewSlabReal builds the DNS transform for an N³ real field (even N).
func NewSlabReal(comm *mpi.Comm, n int) *SlabReal {
	if n%2 != 0 {
		panic(fmt.Sprintf("pfft: SlabReal requires even N, got %d", n))
	}
	s := grid.NewSlab(n, comm.Size(), comm.Rank())
	nxh := n/2 + 1
	return &SlabReal{
		comm: comm,
		s:    s,
		n:    n,
		nxh:  nxh,
		by:   fft.NewBatch(n, nxh, nxh, 1, nxh, 1),
		bz:   fft.NewBatch(n, nxh, nxh, 1, nxh, 1),
		bx:   fft.NewRealBatch(n, n, 1, n, 1, nxh),
		pack: make([]complex128, s.MZ()*n*nxh),
		recv: make([]complex128, s.MZ()*n*nxh),
		mid:  make([]complex128, s.MY()*n*nxh),
		met:  newPhaseMetrics(comm),
	}
}

// Slab reports the decomposition geometry.
func (f *SlabReal) Slab() grid.Slab { return f.s }

// NXH is the stored x extent of the half-spectrum, N/2+1.
func (f *SlabReal) NXH() int { return f.nxh }

// FourierLen is the complex element count of one local Fourier slab.
func (f *SlabReal) FourierLen() int { return f.s.MZ() * f.n * f.nxh }

// PhysicalLen is the real element count of one local physical slab.
func (f *SlabReal) PhysicalLen() int { return f.s.MY() * f.n * f.n }

// FourierToPhysical transforms four=[mz][ny][nxh] (complex) into
// phys=[my][nz][nx] (real), with 1/N³ normalization. four is consumed
// as scratch.
func (f *SlabReal) FourierToPhysical(phys []float64, four []complex128) {
	n, nxh, mz, my := f.n, f.nxh, f.s.MZ(), f.s.MY()
	if len(four) != f.FourierLen() || len(phys) != f.PhysicalLen() {
		panic(fmt.Sprintf("pfft: real slab wants four %d phys %d, got %d %d",
			f.FourierLen(), f.PhysicalLen(), len(four), len(phys)))
	}
	stop := f.met.fft.Start()
	for iz := 0; iz < mz; iz++ {
		plane := four[iz*n*nxh : (iz+1)*n*nxh]
		f.by.Inverse(plane, plane)
	}
	stop()
	stop = f.met.pack.Start()
	transpose.PackYZ(f.pack, four, nxh, n, mz, f.comm.Size())
	stop()
	stop = f.met.a2a.Start()
	mpi.Alltoall(f.comm, f.pack, f.recv)
	stop()
	stop = f.met.unpack.Start()
	transpose.UnpackYZ(f.mid, f.recv, nxh, n, my, f.comm.Size())
	stop()
	stop = f.met.fft.Start()
	for iy := 0; iy < my; iy++ {
		plane := f.mid[iy*n*nxh : (iy+1)*n*nxh]
		f.bz.Inverse(plane, plane)
		// complex-to-real along x: [nz][nxh] → [nz][nx].
		f.bx.Inverse(phys[iy*n*n:(iy+1)*n*n], plane)
	}
	stop()
}

// PhysicalToFourier transforms phys=[my][nz][nx] (real) into
// four=[mz][ny][nxh] (complex), unnormalized.
func (f *SlabReal) PhysicalToFourier(four []complex128, phys []float64) {
	n, nxh, mz, my := f.n, f.nxh, f.s.MZ(), f.s.MY()
	if len(four) != f.FourierLen() || len(phys) != f.PhysicalLen() {
		panic(fmt.Sprintf("pfft: real slab wants four %d phys %d, got %d %d",
			f.FourierLen(), f.PhysicalLen(), len(four), len(phys)))
	}
	stop := f.met.fft.Start()
	for iy := 0; iy < my; iy++ {
		plane := f.mid[iy*n*nxh : (iy+1)*n*nxh]
		f.bx.Forward(plane, phys[iy*n*n:(iy+1)*n*n])
		f.bz.Forward(plane, plane)
	}
	stop()
	stop = f.met.pack.Start()
	transpose.PackZY(f.pack, f.mid, nxh, n, my, f.comm.Size())
	stop()
	stop = f.met.a2a.Start()
	mpi.Alltoall(f.comm, f.pack, f.recv)
	stop()
	stop = f.met.unpack.Start()
	transpose.UnpackZY(four, f.recv, nxh, n, mz, f.comm.Size())
	stop()
	stop = f.met.fft.Start()
	for iz := 0; iz < mz; iz++ {
		plane := four[iz*n*nxh : (iz+1)*n*nxh]
		f.by.Forward(plane, plane)
	}
	stop()
}
