package pfft

import (
	"fmt"
	"math"
	"time"

	"repro/internal/exchange"
	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/par"
	"repro/internal/pool"
	"repro/internal/transpose"
)

// phaseMetrics are the per-rank phase histograms of the synchronous
// transform, matching the span classes of the paper's Fig 10 timeline:
// local FFT compute, pack (reordering into send blocks), the
// all-to-all itself, and unpack. The four sections tile each transform
// wall-to-wall, so their sums reconstruct the transform's wall time.
type phaseMetrics struct {
	fft    *metrics.Histogram
	pack   *metrics.Histogram
	a2a    *metrics.Histogram
	unpack *metrics.Histogram
}

func newPhaseMetrics(c *mpi.Comm) *phaseMetrics {
	r := c.Metrics()
	return &phaseMetrics{
		fft:    r.HistogramRank("phase.fft", c.Rank()),
		pack:   r.HistogramRank("phase.pack", c.Rank()),
		a2a:    r.HistogramRank("phase.a2a", c.Rank()),
		unpack: r.HistogramRank("phase.unpack", c.Rank()),
	}
}

// SlabC2C performs distributed complex 3D FFTs on a 1D slab
// decomposition. FourierToPhysical applies inverse transforms in the
// paper's y, z, x order (one all-to-all between y and z);
// PhysicalToFourier applies forward transforms in x, z, y order.
type SlabC2C struct {
	comm *mpi.Comm
	s    grid.Slab
	n    int
	by   *fft.Batch // y transforms on the Fourier-side slab (per z-plane)
	bz   *fft.Batch // z transforms on the physical-side slab (per y-plane)
	bx   *fft.Batch // x transforms on the physical-side slab (per y-plane)
	pack []complex128
	recv []complex128
}

// NewSlabC2C builds the plans and communication buffers for an N³
// transform over the ranks of comm.
func NewSlabC2C(comm *mpi.Comm, n int) *SlabC2C {
	s := grid.NewSlab(n, comm.Size(), comm.Rank())
	f := &SlabC2C{
		comm: comm,
		s:    s,
		n:    n,
		by:   fft.NewBatch(n, n, n, 1, n, 1), // along y, x fastest
		bz:   fft.NewBatch(n, n, n, 1, n, 1), // along z, x fastest
		bx:   fft.NewBatch(n, n, 1, n, 1, n), // along x, contiguous
		pack: make([]complex128, s.MZ()*n*n),
		recv: make([]complex128, s.MZ()*n*n),
	}
	return f
}

// Slab reports the decomposition geometry.
func (f *SlabC2C) Slab() grid.Slab { return f.s }

// LocalLen is the number of complex elements in one local slab.
func (f *SlabC2C) LocalLen() int { return f.s.MZ() * f.n * f.n }

// FourierToPhysical transforms the z-distributed Fourier slab
// four=[mz][ny][nx] into the y-distributed physical slab
// phys=[my][nz][nx], applying the 1/N³ normalization.
func (f *SlabC2C) FourierToPhysical(phys, four []complex128) {
	n, mz, my := f.n, f.s.MZ(), f.s.MY()
	f.checkLen(phys, four)
	// 1) inverse FFT along y, plane by plane.
	for iz := 0; iz < mz; iz++ {
		plane := four[iz*n*n : (iz+1)*n*n]
		f.by.Inverse(plane, plane)
	}
	// 2) pack y→z, all-to-all, unpack.
	transpose.PackYZ(f.pack, four, n, n, mz, f.comm.Size())
	mpi.Alltoall(f.comm, f.pack, f.recv)
	transpose.UnpackYZ(phys, f.recv, n, n, my, f.comm.Size())
	// 3) inverse FFT along z, then x, per y-plane.
	for iy := 0; iy < my; iy++ {
		plane := phys[iy*n*n : (iy+1)*n*n]
		f.bz.Inverse(plane, plane)
		f.bx.Inverse(plane, plane)
	}
}

// PhysicalToFourier transforms the y-distributed physical slab
// phys=[my][nz][nx] into the z-distributed Fourier slab
// four=[mz][ny][nx], unnormalized (the exact adjoint ordering x, z, y
// of FourierToPhysical).
func (f *SlabC2C) PhysicalToFourier(four, phys []complex128) {
	n, mz, my := f.n, f.s.MZ(), f.s.MY()
	f.checkLen(phys, four)
	for iy := 0; iy < my; iy++ {
		plane := phys[iy*n*n : (iy+1)*n*n]
		f.bx.Forward(plane, plane)
		f.bz.Forward(plane, plane)
	}
	transpose.PackZY(f.pack, phys, n, n, my, f.comm.Size())
	mpi.Alltoall(f.comm, f.pack, f.recv)
	transpose.UnpackZY(four, f.recv, n, n, mz, f.comm.Size())
	for iz := 0; iz < mz; iz++ {
		plane := four[iz*n*n : (iz+1)*n*n]
		f.by.Forward(plane, plane)
	}
}

func (f *SlabC2C) checkLen(phys, four []complex128) {
	if len(phys) != f.LocalLen() || len(four) != f.LocalLen() {
		panic(fmt.Sprintf("pfft: slab buffers need %d elements, got phys %d four %d",
			f.LocalLen(), len(phys), len(four)))
	}
}

// SlabReal is the DNS transform pair: real physical fields, conjugate-
// symmetric half-spectra (nxh = n/2+1 in x) in Fourier space.
//
// It is the unified single- and multi-worker implementation of the
// paper's hybrid MPI+OpenMP layer: each rank owns a persistent
// par.Team that splits the y/z/x FFT batch loops and the transpose
// pack/unpack kernels across workers, with one set of FFT plans per
// worker (plans carry scratch and are not concurrency-safe). Results
// are bitwise identical for any team size, because the plane-level
// work units are independent and executed by identical plans.
//
// The steady-state transform path performs zero heap allocations:
// pack/recv/mid buffers come from the process buffer arena at plan
// time, the all-to-all runs through a persistent mpi.A2APlan (barrier
// + direct copies, no per-call messages), the worker bodies are
// precomputed closures dispatched through the reusable team, and phase
// timings use allocation-free ObserveSince instrumentation.
type SlabReal struct {
	comm   *mpi.Comm
	s      grid.Slab
	n      int
	nxh    int
	team   *par.Team
	layout transpose.SlabLayout
	by     []*fft.Batch     // per worker: along y on [mz][ny][nxh]
	bz     []*fft.Batch     // per worker: along z on [my][nz][nxh]
	bx     []*fft.RealBatch // per worker: half-spectrum ↔ real line
	pack   []complex128
	recv   []complex128
	mid    []complex128 // [my][nz][nxh] intermediate
	a2a    *mpi.A2APlan[complex128]
	exch   *mpi.ExchangePlan[complex128]
	strat  exchange.Strategy // pinned concrete strategy (never Auto)
	met    *phaseMetrics
	closed bool

	// Asynchrony-tolerant state (strat == exchange.AT only; exch stays
	// nil): each transpose direction gets its own bounded plan so the
	// two heterogeneous exchanges never share an epoch stream — a stale
	// y→z slab is always an older y→z slab, never a z→y publication
	// read in the wrong layout. atSite further labels each call with
	// the caller's quantity index (SetATSite) so stale slabs only
	// substitute for the same quantity. atStale is the per-call bound
	// handed to DoBounded; atDeadline the plan deadline.
	exchYZ     *mpi.ExchangePlan[complex128]
	exchZY     *mpi.ExchangePlan[complex128]
	atSite     uint32
	atStale    int
	atDeadline time.Duration

	// Staging fields for the precomputed worker bodies: the transform
	// entry points publish the current operand slices here so the team
	// bodies (built once in the constructor) reference them without a
	// per-call closure allocation.
	curFour []complex128
	curPhys []float64
	// Fused-exchange staging: the peer slab table published by
	// ExchangePlan.Do, and the current peer of a chunked round.
	curSrcs    [][]complex128
	curPeer    int
	curPeerSrc []complex128

	invYBody, fwdYBody    func(w, lo, hi int) // over iz planes
	invZXBody, fwdXZBody  func(w, lo, hi int) // over iy planes
	packYZBody, unpZYBody func(w, lo, hi int) // over iz
	packZYBody, unpYZBody func(w, lo, hi int) // over iy

	// Fused gather bodies (over iy for y→z, over iz for z→y) and the
	// per-peer chunked variants; the fused*Fn closures are the gather
	// callbacks handed to ExchangePlan.Do, prebuilt so steady-state
	// dispatch performs zero allocations.
	gatherYZBody, gatherZYBody         func(w, lo, hi int)
	gatherYZPeerBody, gatherZYPeerBody func(w, lo, hi int)
	fusedYZFn, fusedZYFn               func(srcs [][]complex128)
	chunkedYZFn, chunkedZYFn           func(srcs [][]complex128)
}

// NewSlabReal builds the DNS transform for an N³ real field (even N)
// with a single worker per rank.
func NewSlabReal(comm *mpi.Comm, n int) *SlabReal {
	return NewSlabRealWorkers(comm, n, 1)
}

// NewSlabRealWorkers builds the DNS transform with a team of workers
// per rank (workers ≥ 1), autotuning the transpose-exchange strategy
// at plan time. Collective: every rank must construct the transform at
// the same point in its collective order (the persistent all-to-all
// and exchange plans register state across ranks, and the autotuner
// runs collective trials).
func NewSlabRealWorkers(comm *mpi.Comm, n, workers int) *SlabReal {
	return NewSlabRealStrategy(comm, n, workers, exchange.Auto)
}

// NewSlabRealStrategy builds the DNS transform with an explicit
// transpose-exchange strategy. exchange.Auto microbenchmarks every
// concrete strategy at the actual (N, P, workers) and pins the
// collectively-agreed winner; a concrete strategy skips the trials and
// pins that strategy on every rank. Collective.
func NewSlabRealStrategy(comm *mpi.Comm, n, workers int, strat exchange.Strategy) *SlabReal {
	if strat == exchange.AT {
		panic("pfft: exchange.AT needs a staleness bound; use NewSlabRealAT")
	}
	return newSlabReal(comm, n, workers, strat, 0, 0)
}

// NewSlabRealAT builds the DNS transform on the asynchrony-tolerant
// exchange: each transpose direction runs through its own bounded plan
// via DoBounded with the given staleness bound (in that plan's
// exchange epochs) and per-plan deadline, so a straggling rank delays
// its peers by at most the deadline once they are within maxStale
// epochs — and a stale slab is always the same direction's (and, with
// SetATSite, the same quantity's) publication from an earlier cycle.
// The observed staleness is drained with TakeStaleness by
// scheme-correcting callers. Collective.
func NewSlabRealAT(comm *mpi.Comm, n, workers, maxStale int, deadline time.Duration) *SlabReal {
	if maxStale < 0 {
		panic(fmt.Sprintf("pfft: negative staleness bound %d", maxStale))
	}
	return newSlabReal(comm, n, workers, exchange.AT, maxStale, deadline)
}

func newSlabReal(comm *mpi.Comm, n, workers int, strat exchange.Strategy, maxStale int, deadline time.Duration) *SlabReal {
	if n%2 != 0 {
		panic(fmt.Sprintf("pfft: SlabReal requires even N, got %d", n))
	}
	s := grid.NewSlab(n, comm.Size(), comm.Rank())
	nxh := n/2 + 1
	f := &SlabReal{
		comm:   comm,
		s:      s,
		n:      n,
		nxh:    nxh,
		team:   par.NewTeam(workers),
		layout: transpose.NewSlabLayout(nxh, n, s.MZ(), comm.Size()),
		pack:   pool.GetComplex(s.MZ() * n * nxh),
		recv:   pool.GetComplex(s.MZ() * n * nxh),
		mid:    pool.GetComplex(s.MY() * n * nxh),
		met:    newPhaseMetrics(comm),

		atStale:    maxStale,
		atDeadline: deadline,
	}
	for w := 0; w < workers; w++ {
		f.by = append(f.by, fft.NewBatch(n, nxh, nxh, 1, nxh, 1))
		f.bz = append(f.bz, fft.NewBatch(n, nxh, nxh, 1, nxh, 1))
		f.bx = append(f.bx, fft.NewRealBatch(n, n, 1, n, 1, nxh))
	}
	f.a2a = mpi.NewA2APlan(comm, f.pack, f.recv)
	if strat == exchange.AT {
		f.exchYZ = mpi.NewExchangePlanBounded[complex128](comm, f.FourierLen(), maxStale, deadline)
		f.exchZY = mpi.NewExchangePlanBounded[complex128](comm, len(f.mid), maxStale, deadline)
	} else {
		f.exch = mpi.NewExchangePlan[complex128](comm, f.FourierLen())
	}
	f.buildBodies()
	if strat == exchange.Auto {
		strat = f.autotune()
	}
	f.strat = strat
	comm.Metrics().GaugeRank("exchange.strategy", comm.Rank()).Set(strat.Code())
	return f
}

// buildBodies precomputes the team worker closures once, so transform
// calls dispatch them with zero allocations. The closure bodies are
// the per-plane transform kernels, annotated hot so the analyzer
// checks inside them even though the closures are built at plan time.
//
//psdns:hotpath
func (f *SlabReal) buildBodies() {
	n, nxh := f.n, f.nxh
	f.invYBody = func(w, lo, hi int) {
		for iz := lo; iz < hi; iz++ {
			plane := f.curFour[iz*n*nxh : (iz+1)*n*nxh]
			f.by[w].Inverse(plane, plane)
		}
	}
	f.fwdYBody = func(w, lo, hi int) {
		for iz := lo; iz < hi; iz++ {
			plane := f.curFour[iz*n*nxh : (iz+1)*n*nxh]
			f.by[w].Forward(plane, plane)
		}
	}
	f.invZXBody = func(w, lo, hi int) {
		for iy := lo; iy < hi; iy++ {
			plane := f.mid[iy*n*nxh : (iy+1)*n*nxh]
			f.bz[w].Inverse(plane, plane)
			// complex-to-real along x: [nz][nxh] → [nz][nx].
			f.bx[w].Inverse(f.curPhys[iy*n*n:(iy+1)*n*n], plane)
		}
	}
	f.fwdXZBody = func(w, lo, hi int) {
		for iy := lo; iy < hi; iy++ {
			plane := f.mid[iy*n*nxh : (iy+1)*n*nxh]
			f.bx[w].Forward(plane, f.curPhys[iy*n*n:(iy+1)*n*n])
			f.bz[w].Forward(plane, plane)
		}
	}
	f.packYZBody = func(_, lo, hi int) {
		transpose.PackYZRange(&f.layout, f.pack, f.curFour, lo, hi)
	}
	f.unpYZBody = func(_, lo, hi int) {
		transpose.UnpackYZRange(&f.layout, f.mid, f.recv, lo, hi)
	}
	f.packZYBody = func(_, lo, hi int) {
		transpose.PackZYRange(&f.layout, f.pack, f.mid, lo, hi)
	}
	f.unpZYBody = func(_, lo, hi int) {
		transpose.UnpackZYRange(&f.layout, f.curFour, f.recv, lo, hi)
	}

	// Fused-exchange gather kernels: each worker reads its dst range
	// directly from every peer's published slab (f.curSrcs) — pack,
	// wire copy and unpack fused into one pass. The *Peer bodies gather
	// one peer's contribution only, for the chunked pairwise rounds.
	me, p := f.comm.Rank(), f.comm.Size()
	f.gatherYZBody = func(_, lo, hi int) {
		transpose.GatherYZRange(&f.layout, f.mid, f.curSrcs, me, lo, hi)
	}
	f.gatherZYBody = func(_, lo, hi int) {
		transpose.GatherZYRange(&f.layout, f.curFour, f.curSrcs, me, lo, hi)
	}
	f.gatherYZPeerBody = func(_, lo, hi int) {
		transpose.GatherYZPeer(&f.layout, f.mid, f.curPeerSrc, me, f.curPeer, lo, hi)
	}
	f.gatherZYPeerBody = func(_, lo, hi int) {
		transpose.GatherZYPeer(&f.layout, f.curFour, f.curPeerSrc, me, f.curPeer, lo, hi)
	}
	f.fusedYZFn = func(srcs [][]complex128) {
		f.curSrcs = srcs
		f.team.ForWorkers(f.s.MY(), f.gatherYZBody)
		f.curSrcs = nil
	}
	f.fusedZYFn = func(srcs [][]complex128) {
		f.curSrcs = srcs
		f.team.ForWorkers(f.s.MZ(), f.gatherZYBody)
		f.curSrcs = nil
	}
	// Chunked rounds visit peers in pairwise-exchange order (round r
	// gathers from (me+r)%P, round 0 being the local slab) so that at
	// any moment each published slab is read by one rank's team.
	f.chunkedYZFn = func(srcs [][]complex128) {
		for r := 0; r < p; r++ {
			f.curPeer = (me + r) % p
			f.curPeerSrc = srcs[f.curPeer]
			f.team.ForWorkers(f.s.MY(), f.gatherYZPeerBody)
		}
		f.curPeerSrc = nil
	}
	f.chunkedZYFn = func(srcs [][]complex128) {
		for r := 0; r < p; r++ {
			f.curPeer = (me + r) % p
			f.curPeerSrc = srcs[f.curPeer]
			f.team.ForWorkers(f.s.MZ(), f.gatherZYPeerBody)
		}
		f.curPeerSrc = nil
	}
}

// Slab reports the decomposition geometry.
func (f *SlabReal) Slab() grid.Slab { return f.s }

// NXH is the stored x extent of the half-spectrum, N/2+1.
func (f *SlabReal) NXH() int { return f.nxh }

// FourierLen is the complex element count of one local Fourier slab.
func (f *SlabReal) FourierLen() int { return f.s.MZ() * f.n * f.nxh }

// PhysicalLen is the real element count of one local physical slab.
func (f *SlabReal) PhysicalLen() int { return f.s.MY() * f.n * f.n }

// Threads reports the worker-team size.
func (f *SlabReal) Threads() int { return f.team.Size() }

// Workers reports the worker-team size (alias of Threads).
func (f *SlabReal) Workers() int { return f.team.Size() }

// Close releases the worker team, the persistent all-to-all and every
// pooled buffer back to the arena. The transform must not be used
// afterwards. Safe to call once per rank, in any order across ranks.
func (f *SlabReal) Close() {
	if f.closed {
		return
	}
	f.closed = true
	f.team.Close()
	f.a2a.Free()
	if f.exch != nil {
		f.exch.Free()
	}
	if f.exchYZ != nil {
		f.exchYZ.Free()
	}
	if f.exchZY != nil {
		f.exchZY.Free()
	}
	for w := range f.by {
		f.by[w].Release()
		f.bz[w].Release()
		f.bx[w].Release()
	}
	pool.PutComplex(f.pack)
	pool.PutComplex(f.recv)
	pool.PutComplex(f.mid)
	f.pack, f.recv, f.mid = nil, nil, nil
}

// FourierToPhysical transforms four=[mz][ny][nxh] (complex) into
// phys=[my][nz][nx] (real), with 1/N³ normalization. four is consumed
// as scratch.
//
//psdns:hotpath
func (f *SlabReal) FourierToPhysical(phys []float64, four []complex128) {
	mz, my := f.s.MZ(), f.s.MY()
	if len(four) != f.FourierLen() || len(phys) != f.PhysicalLen() {
		panic(fmt.Sprintf("pfft: real slab wants four %d phys %d, got %d %d",
			f.FourierLen(), f.PhysicalLen(), len(four), len(phys)))
	}
	f.curFour, f.curPhys = four, phys
	t := time.Now()
	f.team.ForWorkers(mz, f.invYBody)
	f.met.fft.ObserveSince(t)
	f.transposeYZ()
	t = time.Now()
	f.team.ForWorkers(my, f.invZXBody)
	f.met.fft.ObserveSince(t)
	f.curFour, f.curPhys = nil, nil
}

// transposeYZ moves the y-transformed Fourier slab (f.curFour) into
// the physical-side layout (f.mid) using the pinned strategy. Staged
// runs the pack → persistent all-to-all → unpack triple with per-phase
// timings; fused and chunked run one ExchangePlan.Do whose wall time
// lands in phase.a2a (gather time is additionally recorded by the plan
// in exchange.gather.ns).
//
//psdns:hotpath
func (f *SlabReal) transposeYZ() {
	switch f.strat {
	case exchange.Staged:
		t := time.Now()
		f.team.ForWorkers(f.s.MZ(), f.packYZBody)
		f.met.pack.ObserveSince(t)
		t = time.Now()
		f.a2a.Do()
		f.met.a2a.ObserveSince(t)
		t = time.Now()
		f.team.ForWorkers(f.s.MY(), f.unpYZBody)
		f.met.unpack.ObserveSince(t)
	case exchange.Fused:
		t := time.Now()
		f.exch.Do(f.curFour, f.fusedYZFn)
		f.met.a2a.ObserveSince(t)
	case exchange.AT:
		t := time.Now()
		f.exchYZ.SetSite(f.atSite)
		f.exchYZ.DoBounded(f.curFour, f.fusedYZFn, f.atStale)
		f.met.a2a.ObserveSince(t)
	default: // exchange.ChunkedFused
		t := time.Now()
		f.exch.Do(f.curFour, f.chunkedYZFn)
		f.met.a2a.ObserveSince(t)
	}
}

// transposeZY is the inverse exchange: the z/x-transformed physical-
// side slab (f.mid) back into the Fourier layout (f.curFour).
//
//psdns:hotpath
func (f *SlabReal) transposeZY() {
	switch f.strat {
	case exchange.Staged:
		t := time.Now()
		f.team.ForWorkers(f.s.MY(), f.packZYBody)
		f.met.pack.ObserveSince(t)
		t = time.Now()
		f.a2a.Do()
		f.met.a2a.ObserveSince(t)
		t = time.Now()
		f.team.ForWorkers(f.s.MZ(), f.unpZYBody)
		f.met.unpack.ObserveSince(t)
	case exchange.Fused:
		t := time.Now()
		f.exch.Do(f.mid, f.fusedZYFn)
		f.met.a2a.ObserveSince(t)
	case exchange.AT:
		t := time.Now()
		f.exchZY.SetSite(f.atSite)
		f.exchZY.DoBounded(f.mid, f.fusedZYFn, f.atStale)
		f.met.a2a.ObserveSince(t)
	default: // exchange.ChunkedFused
		t := time.Now()
		f.exch.Do(f.mid, f.chunkedZYFn)
		f.met.a2a.ObserveSince(t)
	}
}

// PhysicalToFourier transforms phys=[my][nz][nx] (real) into
// four=[mz][ny][nxh] (complex), unnormalized.
//
//psdns:hotpath
func (f *SlabReal) PhysicalToFourier(four []complex128, phys []float64) {
	mz, my := f.s.MZ(), f.s.MY()
	if len(four) != f.FourierLen() || len(phys) != f.PhysicalLen() {
		panic(fmt.Sprintf("pfft: real slab wants four %d phys %d, got %d %d",
			f.FourierLen(), f.PhysicalLen(), len(four), len(phys)))
	}
	f.curFour, f.curPhys = four, phys
	t := time.Now()
	f.team.ForWorkers(my, f.fwdXZBody)
	f.met.fft.ObserveSince(t)
	f.transposeZY()
	t = time.Now()
	f.team.ForWorkers(mz, f.fwdYBody)
	f.met.fft.ObserveSince(t)
	f.curFour, f.curPhys = nil, nil
}

// Strategy reports the pinned transpose-exchange strategy (never
// exchange.Auto: autotuned plans report the winner).
func (f *SlabReal) Strategy() exchange.Strategy { return f.strat }

// SetATSite labels the quantity the next bounded exchanges carry (see
// mpi.ExchangePlan.SetSite): callers interleaving several fields or
// stages through one transform set a collectively-consistent site
// index before each transform call, so accepted stale slabs are always
// the same quantity from whole steps earlier. No-op on non-AT
// transforms.
func (f *SlabReal) SetATSite(site uint32) { f.atSite = site }

// TakeStaleness drains the asynchrony-tolerant staleness window since
// the previous take, summed over both directional plans: the worst
// accepted slab age (in same-site cycles), the summed age, the stale
// slab count and the number of bounded exchanges. All zeros on non-AT
// transforms (and on AT transforms whose peers kept up).
func (f *SlabReal) TakeStaleness() (max int, sum, slabs, calls int64) {
	if f.exchYZ == nil {
		return 0, 0, 0, 0
	}
	max, sum, slabs, calls = f.exchYZ.TakeStaleness()
	m2, s2, sl2, c2 := f.exchZY.TakeStaleness()
	if m2 > max {
		max = m2
	}
	return max, sum + s2, slabs + sl2, calls + c2
}

// ExchangeYZ performs only the y→z transpose-exchange of four into the
// internal physical-side buffer, using the pinned strategy. This is
// the isolated exchange kernel the bench harness pins per strategy;
// the transform entry points go through the same path.
//
//psdns:hotpath
func (f *SlabReal) ExchangeYZ(four []complex128) {
	if len(four) != f.FourierLen() {
		panic(fmt.Sprintf("pfft: ExchangeYZ wants %d elements, got %d", f.FourierLen(), len(four)))
	}
	f.curFour = four
	f.transposeYZ()
	f.curFour = nil
}

// autotune times every concrete exchange strategy on this plan's
// actual geometry and team, and returns the collectively-agreed
// winner: each rank's best-of-k times are allgathered and
// exchange.Resolve picks the strategy whose slowest rank is fastest
// (ties to the earlier candidate, so Staged is never beaten by a
// statistical wash). Every rank computes the same winner from the same
// gathered table — no extra agreement round is needed. Collective;
// runs at plan time only, using a pooled trial slab released before
// returning.
func (f *SlabReal) autotune() exchange.Strategy {
	const trials = 3
	cands := exchange.Concrete
	trial := pool.GetComplex(f.FourierLen())
	mine := make([]float64, len(cands))
	for i, st := range cands {
		best := math.Inf(1)
		for k := 0; k < trials; k++ {
			f.comm.Barrier()
			t0 := time.Now()
			f.runTrial(st, trial)
			if dt := time.Since(t0).Seconds(); dt < best {
				best = dt
			}
		}
		mine[i] = best
	}
	pool.PutComplex(trial)
	all := make([]float64, len(cands)*f.comm.Size())
	mpi.Allgather(f.comm, mine, all)
	perRank := make([][]float64, f.comm.Size())
	for r := range perRank {
		perRank[r] = all[r*len(cands) : (r+1)*len(cands)]
	}
	return exchange.Resolve(cands, perRank)
}

// runTrial executes one y→z exchange of the trial slab under st.
// Collective (every strategy's exchange is bracketed by plan
// barriers).
func (f *SlabReal) runTrial(st exchange.Strategy, four []complex128) {
	f.curFour = four
	switch st {
	case exchange.Staged:
		f.team.ForWorkers(f.s.MZ(), f.packYZBody)
		f.a2a.Do()
		f.team.ForWorkers(f.s.MY(), f.unpYZBody)
	case exchange.Fused:
		f.exch.Do(four, f.fusedYZFn)
	default:
		f.exch.Do(four, f.chunkedYZFn)
	}
	f.curFour = nil
}
