package pfft

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/exchange"
	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/par"
	"repro/internal/pool"
	"repro/internal/transpose"
	"repro/internal/tuning"
)

// phaseMetrics are the per-rank phase histograms of the synchronous
// transform, matching the span classes of the paper's Fig 10 timeline:
// local FFT compute, pack (reordering into send blocks), the
// all-to-all itself, and unpack. The four sections tile each transform
// wall-to-wall, so their sums reconstruct the transform's wall time.
type phaseMetrics struct {
	fft    *metrics.Histogram
	pack   *metrics.Histogram
	a2a    *metrics.Histogram
	unpack *metrics.Histogram
}

func newPhaseMetrics(c *mpi.Comm) *phaseMetrics {
	return newPhaseMetricsAt(c.Metrics(), c.Rank())
}

// newPhaseMetricsAt labels the histograms with an explicit rank:
// sub-communicators share the world's registry, so engines spanning a
// process grid pass a grid-global rank instead of a sub-communicator
// rank that would collide across groups.
func newPhaseMetricsAt(r *metrics.Registry, rank int) *phaseMetrics {
	return &phaseMetrics{
		fft:    r.HistogramRank("phase.fft", rank),
		pack:   r.HistogramRank("phase.pack", rank),
		a2a:    r.HistogramRank("phase.a2a", rank),
		unpack: r.HistogramRank("phase.unpack", rank),
	}
}

// SlabC2C performs distributed complex 3D FFTs on a 1D slab
// decomposition. FourierToPhysical applies inverse transforms in the
// paper's y, z, x order (one all-to-all between y and z);
// PhysicalToFourier applies forward transforms in x, z, y order.
type SlabC2C struct {
	comm *mpi.Comm
	s    grid.Slab
	n    int
	by   *fft.Batch // y transforms on the Fourier-side slab (per z-plane)
	bz   *fft.Batch // z transforms on the physical-side slab (per y-plane)
	bx   *fft.Batch // x transforms on the physical-side slab (per y-plane)
	pack []complex128
	recv []complex128
}

// NewSlabC2C builds the plans and communication buffers for an N³
// transform over the ranks of comm.
func NewSlabC2C(comm *mpi.Comm, n int) *SlabC2C {
	s := grid.NewSlab(n, comm.Size(), comm.Rank())
	f := &SlabC2C{
		comm: comm,
		s:    s,
		n:    n,
		by:   fft.NewBatch(n, n, n, 1, n, 1), // along y, x fastest
		bz:   fft.NewBatch(n, n, n, 1, n, 1), // along z, x fastest
		bx:   fft.NewBatch(n, n, 1, n, 1, n), // along x, contiguous
		pack: make([]complex128, s.MZ()*n*n),
		recv: make([]complex128, s.MZ()*n*n),
	}
	return f
}

// Slab reports the decomposition geometry.
func (f *SlabC2C) Slab() grid.Slab { return f.s }

// LocalLen is the number of complex elements in one local slab.
func (f *SlabC2C) LocalLen() int { return f.s.MZ() * f.n * f.n }

// FourierToPhysical transforms the z-distributed Fourier slab
// four=[mz][ny][nx] into the y-distributed physical slab
// phys=[my][nz][nx], applying the 1/N³ normalization.
func (f *SlabC2C) FourierToPhysical(phys, four []complex128) {
	n, mz, my := f.n, f.s.MZ(), f.s.MY()
	f.checkLen(phys, four)
	// 1) inverse FFT along y, plane by plane.
	for iz := 0; iz < mz; iz++ {
		plane := four[iz*n*n : (iz+1)*n*n]
		f.by.Inverse(plane, plane)
	}
	// 2) pack y→z, all-to-all, unpack.
	transpose.PackYZ(f.pack, four, n, n, mz, f.comm.Size())
	mpi.Alltoall(f.comm, f.pack, f.recv)
	transpose.UnpackYZ(phys, f.recv, n, n, my, f.comm.Size())
	// 3) inverse FFT along z, then x, per y-plane.
	for iy := 0; iy < my; iy++ {
		plane := phys[iy*n*n : (iy+1)*n*n]
		f.bz.Inverse(plane, plane)
		f.bx.Inverse(plane, plane)
	}
}

// PhysicalToFourier transforms the y-distributed physical slab
// phys=[my][nz][nx] into the z-distributed Fourier slab
// four=[mz][ny][nx], unnormalized (the exact adjoint ordering x, z, y
// of FourierToPhysical).
func (f *SlabC2C) PhysicalToFourier(four, phys []complex128) {
	n, mz, my := f.n, f.s.MZ(), f.s.MY()
	f.checkLen(phys, four)
	for iy := 0; iy < my; iy++ {
		plane := phys[iy*n*n : (iy+1)*n*n]
		f.bx.Forward(plane, plane)
		f.bz.Forward(plane, plane)
	}
	transpose.PackZY(f.pack, phys, n, n, my, f.comm.Size())
	mpi.Alltoall(f.comm, f.pack, f.recv)
	transpose.UnpackZY(four, f.recv, n, n, mz, f.comm.Size())
	for iz := 0; iz < mz; iz++ {
		plane := four[iz*n*n : (iz+1)*n*n]
		f.by.Forward(plane, plane)
	}
}

func (f *SlabC2C) checkLen(phys, four []complex128) {
	if len(phys) != f.LocalLen() || len(four) != f.LocalLen() {
		panic(fmt.Sprintf("pfft: slab buffers need %d elements, got phys %d four %d",
			f.LocalLen(), len(phys), len(four)))
	}
}

// SlabReal is the DNS transform pair: real physical fields, conjugate-
// symmetric half-spectra (nxh = n/2+1 in x) in Fourier space.
//
// It is the unified single- and multi-worker implementation of the
// paper's hybrid MPI+OpenMP layer: each rank owns a persistent
// par.Team that splits the y/z/x FFT batch loops and the transpose
// pack/unpack kernels across workers, with one set of FFT plans per
// worker (plans carry scratch and are not concurrency-safe). Results
// are bitwise identical for any team size, because the plane-level
// work units are independent and executed by identical plans.
//
// The steady-state transform path performs zero heap allocations:
// pack/recv/mid buffers come from the process buffer arena at plan
// time, the all-to-all runs through a persistent mpi.A2APlan (barrier
// + direct copies, no per-call messages), the worker bodies are
// precomputed closures dispatched through the reusable team, and phase
// timings use allocation-free ObserveSince instrumentation.
type SlabReal struct {
	comm   *mpi.Comm
	s      grid.Slab
	n      int
	nxh    int
	team   *par.Team
	layout transpose.SlabLayout
	by     []*fft.Batch     // per worker: along y on [mz][ny][nxh]
	bz     []*fft.Batch     // per worker: along z on [my][nz][nxh]
	bx     []*fft.RealBatch // per worker: half-spectrum ↔ real line
	pack   []complex128
	recv   []complex128
	mid    []complex128 // [my][nz][nxh] intermediate
	a2a    *mpi.A2APlan[complex128]
	exch   *mpi.ExchangePlan[complex128]
	// The pinned concrete strategies (never Auto), one per transpose
	// direction: stratYZ moves the Fourier slab into the physical
	// layout (FourierToPhysical), stratZY the reverse. The two
	// directions stream mirrored access patterns, so the autotuner
	// measures and pins them independently.
	stratYZ exchange.Strategy
	stratZY exchange.Strategy
	met     *phaseMetrics
	closed  bool

	// Asynchrony-tolerant state (strat == exchange.AT only; exch stays
	// nil): each transpose direction gets its own bounded plan so the
	// two heterogeneous exchanges never share an epoch stream — a stale
	// y→z slab is always an older y→z slab, never a z→y publication
	// read in the wrong layout. atSite further labels each call with
	// the caller's quantity index (SetATSite) so stale slabs only
	// substitute for the same quantity. atStale is the per-call bound
	// handed to DoBounded; atDeadline the plan deadline.
	exchYZ     *mpi.ExchangePlan[complex128]
	exchZY     *mpi.ExchangePlan[complex128]
	atSite     uint32
	atStale    int
	atDeadline time.Duration

	// Staging fields for the precomputed worker bodies: the transform
	// entry points publish the current operand slices here so the team
	// bodies (built once in the constructor) reference them without a
	// per-call closure allocation.
	curFour []complex128
	curPhys []float64
	// Fused-exchange staging: the peer slab table published by
	// ExchangePlan.Do, and the current peer of a chunked round.
	curSrcs    [][]complex128
	curPeer    int
	curPeerSrc []complex128

	invYBody, fwdYBody    func(w, lo, hi int) // over iz planes
	invZXBody, fwdXZBody  func(w, lo, hi int) // over iy planes
	packYZBody, unpZYBody func(w, lo, hi int) // over iz
	packZYBody, unpYZBody func(w, lo, hi int) // over iy

	// Fused gather bodies (over iy for y→z, over iz for z→y) and the
	// per-peer chunked variants; the fused*Fn closures are the gather
	// callbacks handed to ExchangePlan.Do, prebuilt so steady-state
	// dispatch performs zero allocations.
	gatherYZBody, gatherZYBody         func(w, lo, hi int)
	gatherYZPeerBody, gatherZYPeerBody func(w, lo, hi int)
	fusedYZFn, fusedZYFn               func(srcs [][]complex128)
	chunkedYZFn, chunkedZYFn           func(srcs [][]complex128)

	// Single-precision wire pipeline (single == true): the FFT stages
	// still compute in float64, but the transpose-exchange narrows each
	// slab to complex64 before it moves and widens after — half the
	// bytes through the pack/exchange/unpack (or fused-gather) path,
	// ~1e-7 relative rounding per transform, exactly the paper's
	// production wire format. Only the complex64 halves of the staging
	// buffers and plans exist in this mode; pack/recv/a2a/exch above
	// stay nil.
	single       bool
	four32       []complex64 // narrowed Fourier-side slab [mz][ny][nxh]
	mid32        []complex64 // narrowed physical-side slab [my][nz][nxh]
	pack32       []complex64
	recv32       []complex64
	a2a32        *mpi.A2APlan[complex64]
	exch32       *mpi.ExchangePlan[complex64]
	curSrcs32    [][]complex64
	curPeerSrc32 []complex64

	narrowFourBody, widenFourBody          func(w, lo, hi int) // over iz planes
	narrowMidBody, widenMidBody            func(w, lo, hi int) // over iy planes
	pack32YZBody, unp32ZYBody              func(w, lo, hi int) // over iz
	pack32ZYBody, unp32YZBody              func(w, lo, hi int) // over iy
	gather32YZBody, gather32ZYBody         func(w, lo, hi int)
	gather32YZPeerBody, gather32ZYPeerBody func(w, lo, hi int)
	fused32YZFn, fused32ZYFn               func(srcs [][]complex64)
	chunked32YZFn, chunked32ZYFn           func(srcs [][]complex64)
}

// NewSlabReal builds the DNS transform for an N³ real field (even N)
// with a single worker per rank.
func NewSlabReal(comm *mpi.Comm, n int) *SlabReal {
	return NewSlabRealWorkers(comm, n, 1)
}

// NewSlabRealWorkers builds the DNS transform with a team of workers
// per rank (workers ≥ 1), autotuning the transpose-exchange strategy
// at plan time. Collective: every rank must construct the transform at
// the same point in its collective order (the persistent all-to-all
// and exchange plans register state across ranks, and the autotuner
// runs collective trials).
func NewSlabRealWorkers(comm *mpi.Comm, n, workers int) *SlabReal {
	return NewSlabRealStrategy(comm, n, workers, exchange.Auto)
}

// NewSlabRealStrategy builds the DNS transform with an explicit
// transpose-exchange strategy. exchange.Auto microbenchmarks every
// concrete strategy at the actual (N, P, workers) and pins the
// collectively-agreed winner; a concrete strategy skips the trials and
// pins that strategy on every rank. Collective.
func NewSlabRealStrategy(comm *mpi.Comm, n, workers int, strat exchange.Strategy) *SlabReal {
	if strat == exchange.AT {
		panic("pfft: exchange.AT needs a staleness bound; use NewSlabRealAT")
	}
	return newSlabReal(comm, n, workers, strat, 0, 0, false)
}

// NewSlabRealSingle builds the DNS transform on the single-precision
// wire pipeline: FFT stages compute in float64, but every transpose-
// exchange narrows the moving slab to complex64 first — half the bytes
// through pack/exchange/unpack for ~1e-7 relative rounding per
// transform, the paper's production wire format. The exchange strategy
// is autotuned over the complex64 path at plan time. Collective.
func NewSlabRealSingle(comm *mpi.Comm, n, workers int) *SlabReal {
	return newSlabReal(comm, n, workers, exchange.Auto, 0, 0, true)
}

// NewSlabRealTuned builds the DNS transform by searching cfg.Space —
// the whole-step tune space over (y→z strategy × z→y strategy ×
// workers × wire precision; the slab engine has no pencils, so the
// NP, PerSlab and decomposition dimensions collapse) — with the
// barrier-fenced best-of-k max-over-ranks trial protocol, and pins
// the collectively-agreed winner. The two transpose directions are
// timed independently and each candidate pair is scored as the sum of
// its per-direction times, so the cross-product costs only
// 2×|strategies| trial runs per engine, not |strategies|². When
// cfg.Cache holds a decision for this (N, P, GOMAXPROCS, machine) key
// the trials are skipped entirely and the cached point is constructed
// directly — a warm production restart performs zero trial exchanges
// (the tune.trials counter stays flat). The cached point pins every
// searched dimension, including the worker-team size; workers is only
// the default substituted into an empty Workers dimension. Collective.
func NewSlabRealTuned(comm *mpi.Comm, n, workers int, cfg tuning.Config) *SlabReal {
	key := tuning.Key{
		Engine:   "slab",
		N:        n,
		P:        comm.Size(),
		Maxprocs: runtime.GOMAXPROCS(0),
		Machine:  hw.Fingerprint(),
	}
	if pt, ok := cfg.Lookup(comm, key); ok {
		eng := newSlabReal(comm, n, pt.Workers, pt.Strategy, 0, 0, pt.Single)
		eng.stratZY = pt.StrategyZY
		eng.setStrategyGauges()
		return eng
	}
	pts := slabPoints(cfg.Space, workers)
	// One trial engine per distinct (workers, single) pair, built
	// lazily in candidate order so every rank constructs (a collective)
	// in the same sequence; within an engine the strategies reuse the
	// prebuilt bodies exactly as the strategy autotuner does. Each
	// (engine, direction, strategy) is measured once and memoized; a
	// candidate pair's cost is the sum of its two direction times. The
	// memo misses occur in identical candidate order on every rank, so
	// the collective trial sequence stays symmetric.
	type group struct {
		workers int
		single  bool
	}
	type dirKey struct {
		g  group
		st exchange.Strategy
		zy bool
	}
	engines := map[group]*SlabReal{}
	times := map[dirKey]float64{}
	trial := pool.GetComplex(grid.NewSlab(n, comm.Size(), comm.Rank()).MZ() * n * (n/2 + 1))
	mine := make([]float64, len(pts))
	for i, pt := range pts {
		g := group{pt.Workers, pt.Single}
		eng := engines[g]
		if eng == nil {
			eng = newSlabReal(comm, n, g.workers, exchange.Staged, 0, 0, g.single)
			engines[g] = eng
		}
		kyz := dirKey{g, pt.Strategy, false}
		if _, ok := times[kyz]; !ok {
			st := pt.Strategy
			times[kyz] = tuning.TrialBest(comm, tuning.Trials, func() { eng.runTrial(st, trial) })
		}
		kzy := dirKey{g, pt.StrategyZY, true}
		if _, ok := times[kzy]; !ok {
			st := pt.StrategyZY
			times[kzy] = tuning.TrialBest(comm, tuning.Trials, func() { eng.runTrialZY(st, trial) })
		}
		mine[i] = times[kyz] + times[kzy]
	}
	pool.PutComplex(trial)
	win, cost := tuning.ResolveTimes(comm, mine)
	pt := pts[win]
	cfg.Store(comm, key, pt, cost)
	keep := engines[group{pt.Workers, pt.Single}]
	for _, e := range engines {
		if e != keep {
			e.Close()
		}
	}
	keep.stratYZ, keep.stratZY = pt.Strategy, pt.StrategyZY
	keep.setStrategyGauges()
	return keep
}

// slabPoints enumerates cfg.Space for the slab engine: the NP,
// PerSlab and decomposition dimensions do not exist here, so points
// differing only in them are canonicalized (NP 0, PerSlab false,
// Pr/Pc 0) and deduplicated, preserving the space's tie-break order.
func slabPoints(space tuning.Space, workers int) []tuning.Point {
	type slabKey struct {
		st      exchange.Strategy
		stZY    exchange.Strategy
		workers int
		single  bool
	}
	seen := map[slabKey]bool{}
	var out []tuning.Point
	for _, pt := range space.Points(0, workers) {
		k := slabKey{pt.Strategy, pt.StrategyZY, pt.Workers, pt.Single}
		if seen[k] {
			continue
		}
		seen[k] = true
		pt.NP, pt.PerSlab, pt.Pr, pt.Pc = 0, false, 0, 0
		out = append(out, pt)
	}
	return out
}

// NewSlabRealAT builds the DNS transform on the asynchrony-tolerant
// exchange: each transpose direction runs through its own bounded plan
// via DoBounded with the given staleness bound (in that plan's
// exchange epochs) and per-plan deadline, so a straggling rank delays
// its peers by at most the deadline once they are within maxStale
// epochs — and a stale slab is always the same direction's (and, with
// SetATSite, the same quantity's) publication from an earlier cycle.
// The observed staleness is drained with TakeStaleness by
// scheme-correcting callers. Collective.
func NewSlabRealAT(comm *mpi.Comm, n, workers, maxStale int, deadline time.Duration) *SlabReal {
	if maxStale < 0 {
		panic(fmt.Sprintf("pfft: negative staleness bound %d", maxStale))
	}
	return newSlabReal(comm, n, workers, exchange.AT, maxStale, deadline, false)
}

func newSlabReal(comm *mpi.Comm, n, workers int, strat exchange.Strategy, maxStale int, deadline time.Duration, single bool) *SlabReal {
	if n%2 != 0 {
		panic(fmt.Sprintf("pfft: SlabReal requires even N, got %d", n))
	}
	if single && strat == exchange.AT {
		panic("pfft: the single-precision pipeline does not support the asynchrony-tolerant exchange")
	}
	s := grid.NewSlab(n, comm.Size(), comm.Rank())
	nxh := n/2 + 1
	f := &SlabReal{
		comm:   comm,
		s:      s,
		n:      n,
		nxh:    nxh,
		team:   par.NewTeam(workers),
		layout: transpose.NewSlabLayout(nxh, n, s.MZ(), comm.Size()),
		mid:    pool.GetComplex(s.MY() * n * nxh),
		met:    newPhaseMetrics(comm),
		single: single,

		atStale:    maxStale,
		atDeadline: deadline,
	}
	for w := 0; w < workers; w++ {
		f.by = append(f.by, fft.NewBatch(n, nxh, nxh, 1, nxh, 1))
		f.bz = append(f.bz, fft.NewBatch(n, nxh, nxh, 1, nxh, 1))
		f.bx = append(f.bx, fft.NewRealBatch(n, n, 1, n, 1, nxh))
	}
	// Staging buffers and persistent exchange plans exist only in the
	// precision the pipeline ships; single is a constructor parameter,
	// identical on every rank, so the collective registration order
	// stays uniform.
	if single {
		f.four32 = pool.GetComplex64(s.MZ() * n * nxh)
		f.mid32 = pool.GetComplex64(s.MY() * n * nxh)
		f.pack32 = pool.GetComplex64(s.MZ() * n * nxh)
		f.recv32 = pool.GetComplex64(s.MZ() * n * nxh)
		f.a2a32 = mpi.NewA2APlan(comm, f.pack32, f.recv32)
		f.exch32 = mpi.NewExchangePlan[complex64](comm, f.FourierLen())
	} else {
		f.pack = pool.GetComplex(s.MZ() * n * nxh)
		f.recv = pool.GetComplex(s.MZ() * n * nxh)
		f.a2a = mpi.NewA2APlan(comm, f.pack, f.recv)
		if strat == exchange.AT {
			f.exchYZ = mpi.NewExchangePlanBounded[complex128](comm, f.FourierLen(), maxStale, deadline)
			f.exchZY = mpi.NewExchangePlanBounded[complex128](comm, len(f.mid), maxStale, deadline)
		} else {
			f.exch = mpi.NewExchangePlan[complex128](comm, f.FourierLen())
		}
	}
	f.buildBodies()
	if strat == exchange.Auto {
		f.stratYZ, f.stratZY = f.autotune()
	} else {
		f.stratYZ, f.stratZY = strat, strat
	}
	f.setStrategyGauges()
	return f
}

// setStrategyGauges publishes the pinned per-direction strategies:
// exchange.strategy carries the y→z code (the PR-5 gauge, unchanged),
// exchange.strategy.zy the z→y code.
func (f *SlabReal) setStrategyGauges() {
	r := f.comm.Metrics()
	r.GaugeRank("exchange.strategy", f.comm.Rank()).Set(f.stratYZ.Code())
	r.GaugeRank("exchange.strategy.zy", f.comm.Rank()).Set(f.stratZY.Code())
}

// buildBodies precomputes the team worker closures once, so transform
// calls dispatch them with zero allocations. The closure bodies are
// the per-plane transform kernels, annotated hot so the analyzer
// checks inside them even though the closures are built at plan time.
//
//psdns:hotpath
func (f *SlabReal) buildBodies() {
	n, nxh := f.n, f.nxh
	f.invYBody = func(w, lo, hi int) {
		for iz := lo; iz < hi; iz++ {
			plane := f.curFour[iz*n*nxh : (iz+1)*n*nxh]
			f.by[w].Inverse(plane, plane)
		}
	}
	f.fwdYBody = func(w, lo, hi int) {
		for iz := lo; iz < hi; iz++ {
			plane := f.curFour[iz*n*nxh : (iz+1)*n*nxh]
			f.by[w].Forward(plane, plane)
		}
	}
	f.invZXBody = func(w, lo, hi int) {
		for iy := lo; iy < hi; iy++ {
			plane := f.mid[iy*n*nxh : (iy+1)*n*nxh]
			f.bz[w].Inverse(plane, plane)
			// complex-to-real along x: [nz][nxh] → [nz][nx].
			f.bx[w].Inverse(f.curPhys[iy*n*n:(iy+1)*n*n], plane)
		}
	}
	f.fwdXZBody = func(w, lo, hi int) {
		for iy := lo; iy < hi; iy++ {
			plane := f.mid[iy*n*nxh : (iy+1)*n*nxh]
			f.bx[w].Forward(plane, f.curPhys[iy*n*n:(iy+1)*n*n])
			f.bz[w].Forward(plane, plane)
		}
	}
	f.packYZBody = func(_, lo, hi int) {
		transpose.PackYZRange(&f.layout, f.pack, f.curFour, lo, hi)
	}
	f.unpYZBody = func(_, lo, hi int) {
		transpose.UnpackYZRange(&f.layout, f.mid, f.recv, lo, hi)
	}
	f.packZYBody = func(_, lo, hi int) {
		transpose.PackZYRange(&f.layout, f.pack, f.mid, lo, hi)
	}
	f.unpZYBody = func(_, lo, hi int) {
		transpose.UnpackZYRange(&f.layout, f.curFour, f.recv, lo, hi)
	}

	// Fused-exchange gather kernels: each worker reads its dst range
	// directly from every peer's published slab (f.curSrcs) — pack,
	// wire copy and unpack fused into one pass. The *Peer bodies gather
	// one peer's contribution only, for the chunked pairwise rounds.
	// All gathers run the cache-blocked variants (bitwise-identical,
	// tiled traversal) so the strided side stops thrashing at N ≥ 128.
	me, p := f.comm.Rank(), f.comm.Size()
	const tile = transpose.DefaultGatherTile
	f.gatherYZBody = func(_, lo, hi int) {
		transpose.GatherYZRangeBlocked(&f.layout, f.mid, f.curSrcs, me, lo, hi, tile)
	}
	f.gatherZYBody = func(_, lo, hi int) {
		transpose.GatherZYRangeBlocked(&f.layout, f.curFour, f.curSrcs, me, lo, hi, tile)
	}
	f.gatherYZPeerBody = func(_, lo, hi int) {
		transpose.GatherYZPeerBlocked(&f.layout, f.mid, f.curPeerSrc, me, f.curPeer, lo, hi, tile)
	}
	f.gatherZYPeerBody = func(_, lo, hi int) {
		transpose.GatherZYPeerBlocked(&f.layout, f.curFour, f.curPeerSrc, me, f.curPeer, lo, hi, tile)
	}
	f.fusedYZFn = func(srcs [][]complex128) {
		f.curSrcs = srcs
		f.team.ForWorkers(f.s.MY(), f.gatherYZBody)
		f.curSrcs = nil
	}
	f.fusedZYFn = func(srcs [][]complex128) {
		f.curSrcs = srcs
		f.team.ForWorkers(f.s.MZ(), f.gatherZYBody)
		f.curSrcs = nil
	}
	// Chunked rounds visit peers in pairwise-exchange order (round r
	// gathers from (me+r)%P, round 0 being the local slab) so that at
	// any moment each published slab is read by one rank's team.
	f.chunkedYZFn = func(srcs [][]complex128) {
		for r := 0; r < p; r++ {
			f.curPeer = (me + r) % p
			f.curPeerSrc = srcs[f.curPeer]
			f.team.ForWorkers(f.s.MY(), f.gatherYZPeerBody)
		}
		f.curPeerSrc = nil
	}
	f.chunkedZYFn = func(srcs [][]complex128) {
		for r := 0; r < p; r++ {
			f.curPeer = (me + r) % p
			f.curPeerSrc = srcs[f.curPeer]
			f.team.ForWorkers(f.s.MZ(), f.gatherZYPeerBody)
		}
		f.curPeerSrc = nil
	}

	if !f.single {
		return
	}
	// Single-precision pipeline bodies: strided narrow/widen passes
	// bracketing the exchange, and complex64 twins of the pack/unpack
	// and gather kernels (the transpose kernels are generic, so the
	// same code moves both precisions). pl is the elements per z-plane
	// on the Fourier side and per y-plane on the physical side.
	pl := n * nxh
	f.narrowFourBody = func(_, lo, hi int) {
		transpose.NarrowStrided(f.four32[lo*pl:], pl, f.curFour[lo*pl:], pl, pl, hi-lo)
	}
	f.widenFourBody = func(_, lo, hi int) {
		transpose.WidenStrided(f.curFour[lo*pl:], pl, f.four32[lo*pl:], pl, pl, hi-lo)
	}
	f.narrowMidBody = func(_, lo, hi int) {
		transpose.NarrowStrided(f.mid32[lo*pl:], pl, f.mid[lo*pl:], pl, pl, hi-lo)
	}
	f.widenMidBody = func(_, lo, hi int) {
		transpose.WidenStrided(f.mid[lo*pl:], pl, f.mid32[lo*pl:], pl, pl, hi-lo)
	}
	f.pack32YZBody = func(_, lo, hi int) {
		transpose.PackYZRange(&f.layout, f.pack32, f.four32, lo, hi)
	}
	f.unp32YZBody = func(_, lo, hi int) {
		transpose.UnpackYZRange(&f.layout, f.mid32, f.recv32, lo, hi)
	}
	f.pack32ZYBody = func(_, lo, hi int) {
		transpose.PackZYRange(&f.layout, f.pack32, f.mid32, lo, hi)
	}
	f.unp32ZYBody = func(_, lo, hi int) {
		transpose.UnpackZYRange(&f.layout, f.four32, f.recv32, lo, hi)
	}
	f.gather32YZBody = func(_, lo, hi int) {
		transpose.GatherYZRangeBlocked(&f.layout, f.mid32, f.curSrcs32, me, lo, hi, tile)
	}
	f.gather32ZYBody = func(_, lo, hi int) {
		transpose.GatherZYRangeBlocked(&f.layout, f.four32, f.curSrcs32, me, lo, hi, tile)
	}
	f.gather32YZPeerBody = func(_, lo, hi int) {
		transpose.GatherYZPeerBlocked(&f.layout, f.mid32, f.curPeerSrc32, me, f.curPeer, lo, hi, tile)
	}
	f.gather32ZYPeerBody = func(_, lo, hi int) {
		transpose.GatherZYPeerBlocked(&f.layout, f.four32, f.curPeerSrc32, me, f.curPeer, lo, hi, tile)
	}
	f.fused32YZFn = func(srcs [][]complex64) {
		f.curSrcs32 = srcs
		f.team.ForWorkers(f.s.MY(), f.gather32YZBody)
		f.curSrcs32 = nil
	}
	f.fused32ZYFn = func(srcs [][]complex64) {
		f.curSrcs32 = srcs
		f.team.ForWorkers(f.s.MZ(), f.gather32ZYBody)
		f.curSrcs32 = nil
	}
	f.chunked32YZFn = func(srcs [][]complex64) {
		for r := 0; r < p; r++ {
			f.curPeer = (me + r) % p
			f.curPeerSrc32 = srcs[f.curPeer]
			f.team.ForWorkers(f.s.MY(), f.gather32YZPeerBody)
		}
		f.curPeerSrc32 = nil
	}
	f.chunked32ZYFn = func(srcs [][]complex64) {
		for r := 0; r < p; r++ {
			f.curPeer = (me + r) % p
			f.curPeerSrc32 = srcs[f.curPeer]
			f.team.ForWorkers(f.s.MZ(), f.gather32ZYPeerBody)
		}
		f.curPeerSrc32 = nil
	}
}

// Slab reports the decomposition geometry.
func (f *SlabReal) Slab() grid.Slab { return f.s }

// NXH is the stored x extent of the half-spectrum, N/2+1.
func (f *SlabReal) NXH() int { return f.nxh }

// FourierLen is the complex element count of one local Fourier slab.
func (f *SlabReal) FourierLen() int { return f.s.MZ() * f.n * f.nxh }

// PhysicalLen is the real element count of one local physical slab.
func (f *SlabReal) PhysicalLen() int { return f.s.MY() * f.n * f.n }

// Threads reports the worker-team size.
func (f *SlabReal) Threads() int { return f.team.Size() }

// Workers reports the worker-team size (alias of Threads).
func (f *SlabReal) Workers() int { return f.team.Size() }

// Close releases the worker team, the persistent all-to-all and every
// pooled buffer back to the arena. The transform must not be used
// afterwards. Safe to call once per rank, in any order across ranks.
func (f *SlabReal) Close() {
	if f.closed {
		return
	}
	f.closed = true
	f.team.Close()
	if f.a2a != nil {
		f.a2a.Free()
	}
	if f.exch != nil {
		f.exch.Free()
	}
	if f.exchYZ != nil {
		f.exchYZ.Free()
	}
	if f.exchZY != nil {
		f.exchZY.Free()
	}
	for w := range f.by {
		f.by[w].Release()
		f.bz[w].Release()
		f.bx[w].Release()
	}
	if f.single {
		f.a2a32.Free()
		f.exch32.Free()
		pool.PutComplex64(f.four32)
		pool.PutComplex64(f.mid32)
		pool.PutComplex64(f.pack32)
		pool.PutComplex64(f.recv32)
		f.four32, f.mid32, f.pack32, f.recv32 = nil, nil, nil, nil
	} else {
		pool.PutComplex(f.pack)
		pool.PutComplex(f.recv)
		f.pack, f.recv = nil, nil
	}
	pool.PutComplex(f.mid)
	f.mid = nil
}

// FourierToPhysical transforms four=[mz][ny][nxh] (complex) into
// phys=[my][nz][nx] (real), with 1/N³ normalization. four is consumed
// as scratch.
//
//psdns:hotpath
func (f *SlabReal) FourierToPhysical(phys []float64, four []complex128) {
	mz, my := f.s.MZ(), f.s.MY()
	if len(four) != f.FourierLen() || len(phys) != f.PhysicalLen() {
		panic(fmt.Sprintf("pfft: real slab wants four %d phys %d, got %d %d",
			f.FourierLen(), f.PhysicalLen(), len(four), len(phys)))
	}
	f.curFour, f.curPhys = four, phys
	t := time.Now()
	f.team.ForWorkers(mz, f.invYBody)
	f.met.fft.ObserveSince(t)
	f.transposeYZ()
	t = time.Now()
	f.team.ForWorkers(my, f.invZXBody)
	f.met.fft.ObserveSince(t)
	f.curFour, f.curPhys = nil, nil
}

// transposeYZ moves the y-transformed Fourier slab (f.curFour) into
// the physical-side layout (f.mid) using the pinned strategy. Staged
// runs the pack → persistent all-to-all → unpack triple with per-phase
// timings; fused and chunked run one ExchangePlan.Do whose wall time
// lands in phase.a2a (gather time is additionally recorded by the plan
// in exchange.gather.ns).
//
//psdns:hotpath
func (f *SlabReal) transposeYZ() {
	if f.single {
		f.transposeYZ32()
		return
	}
	switch f.stratYZ {
	case exchange.Staged:
		t := time.Now()
		f.team.ForWorkers(f.s.MZ(), f.packYZBody)
		f.met.pack.ObserveSince(t)
		t = time.Now()
		f.a2a.Do()
		f.met.a2a.ObserveSince(t)
		t = time.Now()
		f.team.ForWorkers(f.s.MY(), f.unpYZBody)
		f.met.unpack.ObserveSince(t)
	case exchange.Fused:
		t := time.Now()
		f.exch.Do(f.curFour, f.fusedYZFn)
		f.met.a2a.ObserveSince(t)
	case exchange.AT:
		t := time.Now()
		f.exchYZ.SetSite(f.atSite)
		f.exchYZ.DoBounded(f.curFour, f.fusedYZFn, f.atStale)
		f.met.a2a.ObserveSince(t)
	default: // exchange.ChunkedFused
		t := time.Now()
		f.exch.Do(f.curFour, f.chunkedYZFn)
		f.met.a2a.ObserveSince(t)
	}
}

// transposeZY is the inverse exchange: the z/x-transformed physical-
// side slab (f.mid) back into the Fourier layout (f.curFour).
//
//psdns:hotpath
func (f *SlabReal) transposeZY() {
	if f.single {
		f.transposeZY32()
		return
	}
	switch f.stratZY {
	case exchange.Staged:
		t := time.Now()
		f.team.ForWorkers(f.s.MY(), f.packZYBody)
		f.met.pack.ObserveSince(t)
		t = time.Now()
		f.a2a.Do()
		f.met.a2a.ObserveSince(t)
		t = time.Now()
		f.team.ForWorkers(f.s.MZ(), f.unpZYBody)
		f.met.unpack.ObserveSince(t)
	case exchange.Fused:
		t := time.Now()
		f.exch.Do(f.mid, f.fusedZYFn)
		f.met.a2a.ObserveSince(t)
	case exchange.AT:
		t := time.Now()
		f.exchZY.SetSite(f.atSite)
		f.exchZY.DoBounded(f.mid, f.fusedZYFn, f.atStale)
		f.met.a2a.ObserveSince(t)
	default: // exchange.ChunkedFused
		t := time.Now()
		f.exch.Do(f.mid, f.chunkedZYFn)
		f.met.a2a.ObserveSince(t)
	}
}

// transposeYZ32 is the single-precision y→z exchange: narrow the
// y-transformed slab to complex64 (timed as pack), move it through the
// pinned strategy's complex64 path, and widen into mid (timed as
// unpack). The narrow/widen passes bracket every strategy, so the wire
// — staged blocks or fused gathers alike — always carries half bytes.
//
//psdns:hotpath
func (f *SlabReal) transposeYZ32() {
	t := time.Now()
	f.team.ForWorkers(f.s.MZ(), f.narrowFourBody)
	if f.stratYZ == exchange.Staged {
		f.team.ForWorkers(f.s.MZ(), f.pack32YZBody)
	}
	f.met.pack.ObserveSince(t)
	t = time.Now()
	switch f.stratYZ {
	case exchange.Staged:
		f.a2a32.Do()
	case exchange.Fused:
		f.exch32.Do(f.four32, f.fused32YZFn)
	default: // exchange.ChunkedFused
		f.exch32.Do(f.four32, f.chunked32YZFn)
	}
	f.met.a2a.ObserveSince(t)
	t = time.Now()
	if f.stratYZ == exchange.Staged {
		f.team.ForWorkers(f.s.MY(), f.unp32YZBody)
	}
	f.team.ForWorkers(f.s.MY(), f.widenMidBody)
	f.met.unpack.ObserveSince(t)
}

// transposeZY32 is the single-precision z→y exchange, the mirror of
// transposeYZ32: narrow mid, exchange in complex64, widen into the
// Fourier slab.
//
//psdns:hotpath
func (f *SlabReal) transposeZY32() {
	t := time.Now()
	f.team.ForWorkers(f.s.MY(), f.narrowMidBody)
	if f.stratZY == exchange.Staged {
		f.team.ForWorkers(f.s.MY(), f.pack32ZYBody)
	}
	f.met.pack.ObserveSince(t)
	t = time.Now()
	switch f.stratZY {
	case exchange.Staged:
		f.a2a32.Do()
	case exchange.Fused:
		f.exch32.Do(f.mid32, f.fused32ZYFn)
	default: // exchange.ChunkedFused
		f.exch32.Do(f.mid32, f.chunked32ZYFn)
	}
	f.met.a2a.ObserveSince(t)
	t = time.Now()
	if f.stratZY == exchange.Staged {
		f.team.ForWorkers(f.s.MZ(), f.unp32ZYBody)
	}
	f.team.ForWorkers(f.s.MZ(), f.widenFourBody)
	f.met.unpack.ObserveSince(t)
}

// PhysicalToFourier transforms phys=[my][nz][nx] (real) into
// four=[mz][ny][nxh] (complex), unnormalized.
//
//psdns:hotpath
func (f *SlabReal) PhysicalToFourier(four []complex128, phys []float64) {
	mz, my := f.s.MZ(), f.s.MY()
	if len(four) != f.FourierLen() || len(phys) != f.PhysicalLen() {
		panic(fmt.Sprintf("pfft: real slab wants four %d phys %d, got %d %d",
			f.FourierLen(), f.PhysicalLen(), len(four), len(phys)))
	}
	f.curFour, f.curPhys = four, phys
	t := time.Now()
	f.team.ForWorkers(my, f.fwdXZBody)
	f.met.fft.ObserveSince(t)
	f.transposeZY()
	t = time.Now()
	f.team.ForWorkers(mz, f.fwdYBody)
	f.met.fft.ObserveSince(t)
	f.curFour, f.curPhys = nil, nil
}

// Strategy reports the pinned y→z transpose-exchange strategy (never
// exchange.Auto: autotuned plans report the winner).
func (f *SlabReal) Strategy() exchange.Strategy { return f.stratYZ }

// StrategyZY reports the pinned z→y transpose-exchange strategy; it
// can differ from Strategy because the two directions stream mirrored
// access patterns and are tuned independently.
func (f *SlabReal) StrategyZY() exchange.Strategy { return f.stratZY }

// StrategyPair reports both pinned strategies as an exchange.Pair.
func (f *SlabReal) StrategyPair() exchange.Pair {
	return exchange.Pair{YZ: f.stratYZ, ZY: f.stratZY}
}

// Single reports whether the transform ships its exchanges through the
// single-precision wire pipeline.
func (f *SlabReal) Single() bool { return f.single }

// SetATSite labels the quantity the next bounded exchanges carry (see
// mpi.ExchangePlan.SetSite): callers interleaving several fields or
// stages through one transform set a collectively-consistent site
// index before each transform call, so accepted stale slabs are always
// the same quantity from whole steps earlier. No-op on non-AT
// transforms.
func (f *SlabReal) SetATSite(site uint32) { f.atSite = site }

// TakeStaleness drains the asynchrony-tolerant staleness window since
// the previous take, summed over both directional plans: the worst
// accepted slab age (in same-site cycles), the summed age, the stale
// slab count and the number of bounded exchanges. All zeros on non-AT
// transforms (and on AT transforms whose peers kept up).
func (f *SlabReal) TakeStaleness() (max int, sum, slabs, calls int64) {
	if f.exchYZ == nil {
		return 0, 0, 0, 0
	}
	max, sum, slabs, calls = f.exchYZ.TakeStaleness()
	m2, s2, sl2, c2 := f.exchZY.TakeStaleness()
	if m2 > max {
		max = m2
	}
	return max, sum + s2, slabs + sl2, calls + c2
}

// ExchangeYZ performs only the y→z transpose-exchange of four into the
// internal physical-side buffer, using the pinned strategy. This is
// the isolated exchange kernel the bench harness pins per strategy;
// the transform entry points go through the same path.
//
//psdns:hotpath
func (f *SlabReal) ExchangeYZ(four []complex128) {
	if len(four) != f.FourierLen() {
		panic(fmt.Sprintf("pfft: ExchangeYZ wants %d elements, got %d", f.FourierLen(), len(four)))
	}
	f.curFour = four
	f.transposeYZ()
	f.curFour = nil
}

// autotune times every concrete exchange strategy, per transpose
// direction, on this plan's actual geometry, team and wire precision
// through the shared trial protocol (tuning.TrialBest /
// tuning.ResolveTimes): each rank's best-of-k per-direction times are
// summed into the y→z × z→y candidate cross-product, the table is
// allgathered, and the pair whose slowest rank is fastest wins (ties
// to the earlier candidate, so Staged/Staged is never beaten by a
// statistical wash). Every rank computes the same winner from the
// same gathered table — no extra agreement round is needed.
// Collective; runs at plan time only, using a pooled trial slab
// released before returning.
func (f *SlabReal) autotune() (yz, zy exchange.Strategy) {
	cands := exchange.Concrete
	nc := len(cands)
	trial := pool.GetComplex(f.FourierLen())
	tyz := make([]float64, nc)
	tzy := make([]float64, nc)
	for i, st := range cands {
		st := st
		tyz[i] = tuning.TrialBest(f.comm, tuning.Trials, func() { f.runTrial(st, trial) })
	}
	for i, st := range cands {
		st := st
		tzy[i] = tuning.TrialBest(f.comm, tuning.Trials, func() { f.runTrialZY(st, trial) })
	}
	pool.PutComplex(trial)
	// Cross-product table in tuning.Space order: y→z varies fastest.
	mine := make([]float64, nc*nc)
	for j := range cands {
		for i := range cands {
			mine[j*nc+i] = tyz[i] + tzy[j]
		}
	}
	win, _ := tuning.ResolveTimes(f.comm, mine)
	return cands[win%nc], cands[win/nc]
}

// runTrial executes one y→z exchange of the trial slab under st, on
// the wire precision the plan was built for. Collective (every
// strategy's exchange is bracketed by plan barriers).
func (f *SlabReal) runTrial(st exchange.Strategy, four []complex128) {
	f.curFour = four
	if f.single {
		f.team.ForWorkers(f.s.MZ(), f.narrowFourBody)
		switch st {
		case exchange.Staged:
			f.team.ForWorkers(f.s.MZ(), f.pack32YZBody)
			f.a2a32.Do()
			f.team.ForWorkers(f.s.MY(), f.unp32YZBody)
		case exchange.Fused:
			f.exch32.Do(f.four32, f.fused32YZFn)
		default:
			f.exch32.Do(f.four32, f.chunked32YZFn)
		}
		f.team.ForWorkers(f.s.MY(), f.widenMidBody)
		f.curFour = nil
		return
	}
	switch st {
	case exchange.Staged:
		f.team.ForWorkers(f.s.MZ(), f.packYZBody)
		f.a2a.Do()
		f.team.ForWorkers(f.s.MY(), f.unpYZBody)
	case exchange.Fused:
		f.exch.Do(four, f.fusedYZFn)
	default:
		f.exch.Do(four, f.chunkedYZFn)
	}
	f.curFour = nil
}

// runTrialZY executes one z→y exchange (the physical-side buffer back
// into the trial Fourier slab) under st, on the wire precision the
// plan was built for. Timed separately from runTrial because the
// mirrored access pattern can favor a different strategy. Collective.
func (f *SlabReal) runTrialZY(st exchange.Strategy, four []complex128) {
	f.curFour = four
	if f.single {
		f.team.ForWorkers(f.s.MY(), f.narrowMidBody)
		switch st {
		case exchange.Staged:
			f.team.ForWorkers(f.s.MY(), f.pack32ZYBody)
			f.a2a32.Do()
			f.team.ForWorkers(f.s.MZ(), f.unp32ZYBody)
		case exchange.Fused:
			f.exch32.Do(f.mid32, f.fused32ZYFn)
		default:
			f.exch32.Do(f.mid32, f.chunked32ZYFn)
		}
		f.team.ForWorkers(f.s.MZ(), f.widenFourBody)
		f.curFour = nil
		return
	}
	switch st {
	case exchange.Staged:
		f.team.ForWorkers(f.s.MY(), f.packZYBody)
		f.a2a.Do()
		f.team.ForWorkers(f.s.MZ(), f.unpZYBody)
	case exchange.Fused:
		f.exch.Do(f.mid, f.fusedZYFn)
	default:
		f.exch.Do(f.mid, f.chunkedZYFn)
	}
	f.curFour = nil
}
