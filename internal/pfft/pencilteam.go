package pfft

import (
	"fmt"
	"time"

	"repro/internal/exchange"
	"repro/internal/fft"
	"repro/internal/mpi"
	"repro/internal/par"
	"repro/internal/pool"
	"repro/internal/transpose"
)

// PencilReal is the production real-field transform on the 2D pencil
// decomposition: the Pr×Pc counterpart of SlabReal, scaling past the
// slab engine's P ≤ N rank ceiling (only Pr and Pc individually must
// divide N). Rank (yG, zG) of the process grid owns the physical
// pencil [My][Mz][Nx] (y range yG·My…, z range zG·Mz…, x complete)
// and the spectral pencil [Mz2][Wc][Ny] (y complete and fastest, the
// transform's natural output layout).
//
// The transform runs the slab engine's exact per-axis order — forward
// x (r2c), z, y; inverse y, z, x — through two transpose-exchanges
// instead of one (see transpose.PencilLayout): the column exchange
// over the Pc-rank column communicator trades the z split for an x
// split, the row exchange over the Pr-rank row communicator trades
// the y split for a z re-split. Because fft.Batch gathers every line
// into contiguous scratch before transforming, identical axis order
// makes the pencil transform bitwise identical to SlabReal for every
// valid Pr×Pc — including 1×P and the P=1 degenerate grid.
//
// Each sub-exchange runs over its own per-communicator persistent
// plans with the same three concrete strategies as the slab exchange
// — Staged (pack → persistent all-to-all → unpack), Fused (zero-copy
// peer-slab gather through an mpi.ExchangePlan) and ChunkedFused
// (pairwise gather rounds) — pinned per transpose direction: stratYZ
// drives both sub-exchanges of FourierToPhysical, stratZY both
// sub-exchanges of PhysicalToFourier. The steady-state transform path
// performs zero heap allocations: all buffers come from the process
// arena at plan time, worker bodies are precomputed closures, and the
// plans are watchdog-visible and abortable like every mpi collective.
//
// The engine is double-precision only (no single-precision wire
// pipeline) and has no asynchrony-tolerant mode; tuned construction
// (NewRealTuned) accounts for both restrictions.
type PencilReal struct {
	commY *mpi.Comm // column communicator, size Pr: completes y, re-splits z
	commZ *mpi.Comm // row communicator, size Pc: completes z, splits x
	n     int
	nxh   int
	l     *transpose.PencilLayout
	team  *par.Team
	bx    []*fft.RealBatch // per worker: x r2c/c2r lines of one y-plane
	bz    []*fft.Batch     // per worker: z lines of one layout-B y-plane
	by    []*fft.Batch     // per worker: y lines of one layout-C z-plane

	xspec []complex128 // [My][Mz][Nxh], padded to PadXLen for publication
	layB  []complex128 // [My][Wc][Nz] z-complete intermediate
	packC []complex128 // Pc·BlockC staged column blocks
	recvC []complex128
	packR []complex128 // Pr·BlockR staged row blocks
	recvR []complex128
	a2aC  *mpi.A2APlan[complex128]
	a2aR  *mpi.A2APlan[complex128]
	exchC *mpi.ExchangePlan[complex128]
	exchR *mpi.ExchangePlan[complex128]

	// Pinned concrete strategies, one per transpose direction (never
	// Auto): stratYZ drives both FourierToPhysical sub-exchanges,
	// stratZY both PhysicalToFourier sub-exchanges.
	stratYZ exchange.Strategy
	stratZY exchange.Strategy
	met     *phaseMetrics
	closed  bool

	// Staging fields for the precomputed worker bodies (see SlabReal).
	curFour    []complex128
	curPhys    []float64
	curSrcs    [][]complex128
	curPeer    int
	curPeerSrc []complex128

	fwdXBody, invXBody func(w, lo, hi int) // over iy planes
	fwdZBody, invZBody func(w, lo, hi int) // over iy planes
	fwdYBody, invYBody func(w, lo, hi int) // over iz planes

	packColFwdBody, unpColFwdBody func(w, lo, hi int) // over iy
	packColInvBody, unpColInvBody func(w, lo, hi int) // over iy
	packRowFwdBody                func(w, lo, hi int) // over iy
	unpRowFwdBody                 func(w, lo, hi int) // over iz
	packRowInvBody                func(w, lo, hi int) // over iz
	unpRowInvBody                 func(w, lo, hi int) // over iy

	gatherColFwdBody, gatherColInvBody func(w, lo, hi int)
	gatherRowFwdBody, gatherRowInvBody func(w, lo, hi int)
	gatherColFwdPeerBody               func(w, lo, hi int)
	gatherColInvPeerBody               func(w, lo, hi int)
	gatherRowFwdPeerBody               func(w, lo, hi int)
	gatherRowInvPeerBody               func(w, lo, hi int)

	fusedColFwdFn, fusedColInvFn     func(srcs [][]complex128)
	fusedRowFwdFn, fusedRowInvFn     func(srcs [][]complex128)
	chunkedColFwdFn, chunkedColInvFn func(srcs [][]complex128)
	chunkedRowFwdFn, chunkedRowInvFn func(srcs [][]complex128)
}

// NewPencilReal builds the pencil transform over a process grid whose
// column communicator commY has size Pr and row communicator commZ
// size Pc (the caller typically obtains them from Comm.CartGrid).
// Both strategies of pair must be concrete: the pencil engine has no
// in-plan autotuner because trial resolution needs a communicator
// spanning the whole grid — use NewRealTuned for tuned construction
// (and for the slab-vs-pencil decomposition choice). Collective over
// both communicators: every rank must construct the transform at the
// same point in each sub-communicator's collective order.
func NewPencilReal(commY, commZ *mpi.Comm, n, workers int, pair exchange.Pair) *PencilReal {
	for _, st := range [2]exchange.Strategy{pair.YZ, pair.ZY} {
		switch st {
		case exchange.Staged, exchange.Fused, exchange.ChunkedFused:
		case exchange.AT:
			panic("pfft: the pencil engine has no asynchrony-tolerant mode; use the slab engine (NewSlabRealAT)")
		default:
			panic("pfft: the pencil engine needs concrete strategies; tune with NewRealTuned")
		}
	}
	pr, pc := commY.Size(), commZ.Size()
	l := transpose.NewPencilLayout(n, pr, pc, commY.Rank(), commZ.Rank())
	f := &PencilReal{
		commY: commY, commZ: commZ,
		n: n, nxh: l.Nxh, l: l,
		team:  par.NewTeam(workers),
		xspec: pool.GetComplex(l.PadXLen),
		layB:  pool.GetComplex(l.BLen()),
		packC: pool.GetComplex(pc * l.BlockC),
		recvC: pool.GetComplex(pc * l.BlockC),
		packR: pool.GetComplex(pr * l.BlockR),
		recvR: pool.GetComplex(pr * l.BlockR),
		// Sub-communicators share the world registry, so label phase
		// metrics with the grid-global rank yG·Pc+zG (the parent comm's
		// rank for CartGrid-derived communicators), not the colliding
		// per-group sub-communicator rank.
		met:     newPhaseMetricsAt(commY.Metrics(), commY.Rank()*pc+commZ.Rank()),
		stratYZ: pair.YZ,
		stratZY: pair.ZY,
	}
	for w := 0; w < workers; w++ {
		f.bx = append(f.bx, fft.NewRealBatch(n, l.Mz, 1, n, 1, l.Nxh))
		f.bz = append(f.bz, fft.NewBatch(n, l.Wc, 1, n, 1, n))
		f.by = append(f.by, fft.NewBatch(n, l.Wc, 1, n, 1, n))
	}
	// Per-communicator persistent plans. The column plan publishes the
	// padded x-complete slab forward and the (shorter, per-rank
	// varying) z-complete slab inverse; PadXLen is identical across
	// the column group and divisible by Pc by construction. The row
	// plan's two layouts have equal length (My == Mz2).
	f.a2aC = mpi.NewA2APlan(commZ, f.packC, f.recvC)
	f.a2aR = mpi.NewA2APlan(commY, f.packR, f.recvR)
	f.exchC = mpi.NewExchangePlan[complex128](commZ, l.PadXLen)
	f.exchR = mpi.NewExchangePlan[complex128](commY, l.BLen())
	f.buildBodies()
	f.setStrategyGauges()
	return f
}

func (f *PencilReal) setStrategyGauges() {
	r := f.commY.Metrics()
	rank := f.commY.Rank()*f.l.Pc + f.commZ.Rank()
	r.GaugeRank("exchange.strategy", rank).Set(f.stratYZ.Code())
	r.GaugeRank("exchange.strategy.zy", rank).Set(f.stratZY.Code())
}

// buildBodies precomputes the team worker closures once, so transform
// calls dispatch them with zero allocations.
//
//psdns:hotpath
func (f *PencilReal) buildBodies() {
	l, n, nxh := f.l, f.n, f.nxh
	mz, wc := l.Mz, l.Wc
	f.fwdXBody = func(w, lo, hi int) {
		for iy := lo; iy < hi; iy++ {
			f.bx[w].Forward(f.xspec[iy*mz*nxh:(iy+1)*mz*nxh], f.curPhys[iy*mz*n:(iy+1)*mz*n])
		}
	}
	f.invXBody = func(w, lo, hi int) {
		for iy := lo; iy < hi; iy++ {
			f.bx[w].Inverse(f.curPhys[iy*mz*n:(iy+1)*mz*n], f.xspec[iy*mz*nxh:(iy+1)*mz*nxh])
		}
	}
	f.fwdZBody = func(w, lo, hi int) {
		for iy := lo; iy < hi; iy++ {
			plane := f.layB[iy*wc*n : (iy+1)*wc*n]
			f.bz[w].Forward(plane, plane)
		}
	}
	f.invZBody = func(w, lo, hi int) {
		for iy := lo; iy < hi; iy++ {
			plane := f.layB[iy*wc*n : (iy+1)*wc*n]
			f.bz[w].Inverse(plane, plane)
		}
	}
	f.fwdYBody = func(w, lo, hi int) {
		for iz := lo; iz < hi; iz++ {
			plane := f.curFour[iz*wc*n : (iz+1)*wc*n]
			f.by[w].Forward(plane, plane)
		}
	}
	f.invYBody = func(w, lo, hi int) {
		for iz := lo; iz < hi; iz++ {
			plane := f.curFour[iz*wc*n : (iz+1)*wc*n]
			f.by[w].Inverse(plane, plane)
		}
	}

	f.packColFwdBody = func(_, lo, hi int) {
		transpose.PencilPackColFwdRange(l, f.packC, f.xspec, lo, hi)
	}
	f.unpColFwdBody = func(_, lo, hi int) {
		transpose.PencilUnpackColFwdRange(l, f.layB, f.recvC, lo, hi)
	}
	f.packColInvBody = func(_, lo, hi int) {
		transpose.PencilPackColInvRange(l, f.packC, f.layB, lo, hi)
	}
	f.unpColInvBody = func(_, lo, hi int) {
		transpose.PencilUnpackColInvRange(l, f.xspec, f.recvC, lo, hi)
	}
	f.packRowFwdBody = func(_, lo, hi int) {
		transpose.PencilPackRowFwdRange(l, f.packR, f.layB, lo, hi)
	}
	f.unpRowFwdBody = func(_, lo, hi int) {
		transpose.PencilUnpackRowFwdRange(l, f.curFour, f.recvR, lo, hi)
	}
	f.packRowInvBody = func(_, lo, hi int) {
		transpose.PencilPackRowInvRange(l, f.packR, f.curFour, lo, hi)
	}
	f.unpRowInvBody = func(_, lo, hi int) {
		transpose.PencilUnpackRowInvRange(l, f.layB, f.recvR, lo, hi)
	}

	f.gatherColFwdBody = func(_, lo, hi int) {
		transpose.PencilGatherColFwdRange(l, f.layB, f.curSrcs, lo, hi)
	}
	f.gatherColInvBody = func(_, lo, hi int) {
		transpose.PencilGatherColInvRange(l, f.xspec, f.curSrcs, lo, hi)
	}
	f.gatherRowFwdBody = func(_, lo, hi int) {
		transpose.PencilGatherRowFwdRange(l, f.curFour, f.curSrcs, lo, hi)
	}
	f.gatherRowInvBody = func(_, lo, hi int) {
		transpose.PencilGatherRowInvRange(l, f.layB, f.curSrcs, lo, hi)
	}
	f.gatherColFwdPeerBody = func(_, lo, hi int) {
		transpose.PencilGatherColFwdPeer(l, f.layB, f.curPeerSrc, f.curPeer, lo, hi)
	}
	f.gatherColInvPeerBody = func(_, lo, hi int) {
		transpose.PencilGatherColInvPeer(l, f.xspec, f.curPeerSrc, f.curPeer, lo, hi)
	}
	f.gatherRowFwdPeerBody = func(_, lo, hi int) {
		transpose.PencilGatherRowFwdPeer(l, f.curFour, f.curPeerSrc, f.curPeer, lo, hi)
	}
	f.gatherRowInvPeerBody = func(_, lo, hi int) {
		transpose.PencilGatherRowInvPeer(l, f.layB, f.curPeerSrc, f.curPeer, lo, hi)
	}

	f.fusedColFwdFn = func(srcs [][]complex128) {
		f.curSrcs = srcs
		f.team.ForWorkers(l.My, f.gatherColFwdBody)
		f.curSrcs = nil
	}
	f.fusedColInvFn = func(srcs [][]complex128) {
		f.curSrcs = srcs
		f.team.ForWorkers(l.My, f.gatherColInvBody)
		f.curSrcs = nil
	}
	f.fusedRowFwdFn = func(srcs [][]complex128) {
		f.curSrcs = srcs
		f.team.ForWorkers(l.Mz2, f.gatherRowFwdBody)
		f.curSrcs = nil
	}
	f.fusedRowInvFn = func(srcs [][]complex128) {
		f.curSrcs = srcs
		f.team.ForWorkers(l.My, f.gatherRowInvBody)
		f.curSrcs = nil
	}
	// Chunked rounds visit peers in pairwise-exchange order within the
	// sub-communicator (round r gathers from (me+r)%P, round 0 the
	// local slab), as the slab engine does.
	meZ, meY := f.commZ.Rank(), f.commY.Rank()
	f.chunkedColFwdFn = func(srcs [][]complex128) {
		for r := 0; r < l.Pc; r++ {
			f.curPeer = (meZ + r) % l.Pc
			f.curPeerSrc = srcs[f.curPeer]
			f.team.ForWorkers(l.My, f.gatherColFwdPeerBody)
		}
		f.curPeerSrc = nil
	}
	f.chunkedColInvFn = func(srcs [][]complex128) {
		for r := 0; r < l.Pc; r++ {
			f.curPeer = (meZ + r) % l.Pc
			f.curPeerSrc = srcs[f.curPeer]
			f.team.ForWorkers(l.My, f.gatherColInvPeerBody)
		}
		f.curPeerSrc = nil
	}
	f.chunkedRowFwdFn = func(srcs [][]complex128) {
		for r := 0; r < l.Pr; r++ {
			f.curPeer = (meY + r) % l.Pr
			f.curPeerSrc = srcs[f.curPeer]
			f.team.ForWorkers(l.Mz2, f.gatherRowFwdPeerBody)
		}
		f.curPeerSrc = nil
	}
	f.chunkedRowInvFn = func(srcs [][]complex128) {
		for r := 0; r < l.Pr; r++ {
			f.curPeer = (meY + r) % l.Pr
			f.curPeerSrc = srcs[f.curPeer]
			f.team.ForWorkers(l.My, f.gatherRowInvPeerBody)
		}
		f.curPeerSrc = nil
	}
}

// Layout reports the pencil geometry.
func (f *PencilReal) Layout() *transpose.PencilLayout { return f.l }

// FourierLen is the complex element count of one local spectral
// pencil (layout C = [Mz2][Wc][Ny]).
func (f *PencilReal) FourierLen() int { return f.l.CLen() }

// PhysicalLen is the real element count of one local physical pencil.
func (f *PencilReal) PhysicalLen() int { return f.l.My * f.l.Mz * f.n }

// Workers reports the worker-team size.
func (f *PencilReal) Workers() int { return f.team.Size() }

// Strategy reports the pinned FourierToPhysical-side strategy;
// StrategyZY the PhysicalToFourier side.
func (f *PencilReal) Strategy() exchange.Strategy   { return f.stratYZ }
func (f *PencilReal) StrategyZY() exchange.Strategy { return f.stratZY }

// StrategyPair reports both pinned strategies as an exchange.Pair.
func (f *PencilReal) StrategyPair() exchange.Pair {
	return exchange.Pair{YZ: f.stratYZ, ZY: f.stratZY}
}

// Close releases the worker team, the four persistent plans and every
// pooled buffer back to the arena. The transform must not be used
// afterwards. Collective in effect (plan frees), like SlabReal.Close.
func (f *PencilReal) Close() {
	if f.closed {
		return
	}
	f.closed = true
	f.team.Close()
	f.a2aC.Free()
	f.a2aR.Free()
	f.exchC.Free()
	f.exchR.Free()
	for w := range f.bx {
		f.bx[w].Release()
		f.bz[w].Release()
		f.by[w].Release()
	}
	pool.PutComplex(f.xspec)
	pool.PutComplex(f.layB)
	pool.PutComplex(f.packC)
	pool.PutComplex(f.recvC)
	pool.PutComplex(f.packR)
	pool.PutComplex(f.recvR)
	f.xspec, f.layB, f.packC, f.recvC, f.packR, f.recvR = nil, nil, nil, nil, nil, nil
}

// transposeColFwd moves the x-complete slab (f.xspec) into the
// z-complete layout (f.layB) over the column communicator, under st.
//
//psdns:hotpath
func (f *PencilReal) transposeColFwd(st exchange.Strategy) {
	switch st {
	case exchange.Staged:
		t := time.Now()
		f.team.ForWorkers(f.l.My, f.packColFwdBody)
		f.met.pack.ObserveSince(t)
		t = time.Now()
		f.a2aC.Do()
		f.met.a2a.ObserveSince(t)
		t = time.Now()
		f.team.ForWorkers(f.l.My, f.unpColFwdBody)
		f.met.unpack.ObserveSince(t)
	case exchange.Fused:
		t := time.Now()
		f.exchC.Do(f.xspec, f.fusedColFwdFn)
		f.met.a2a.ObserveSince(t)
	default: // exchange.ChunkedFused
		t := time.Now()
		f.exchC.Do(f.xspec, f.chunkedColFwdFn)
		f.met.a2a.ObserveSince(t)
	}
}

// transposeColInv moves the z-complete layout back into the
// x-complete slab.
//
//psdns:hotpath
func (f *PencilReal) transposeColInv(st exchange.Strategy) {
	switch st {
	case exchange.Staged:
		t := time.Now()
		f.team.ForWorkers(f.l.My, f.packColInvBody)
		f.met.pack.ObserveSince(t)
		t = time.Now()
		f.a2aC.Do()
		f.met.a2a.ObserveSince(t)
		t = time.Now()
		f.team.ForWorkers(f.l.My, f.unpColInvBody)
		f.met.unpack.ObserveSince(t)
	case exchange.Fused:
		t := time.Now()
		f.exchC.Do(f.layB, f.fusedColInvFn)
		f.met.a2a.ObserveSince(t)
	default:
		t := time.Now()
		f.exchC.Do(f.layB, f.chunkedColInvFn)
		f.met.a2a.ObserveSince(t)
	}
}

// transposeRowFwd moves the z-complete layout into the y-complete
// spectral slab (f.curFour) over the row communicator, under st.
//
//psdns:hotpath
func (f *PencilReal) transposeRowFwd(st exchange.Strategy) {
	switch st {
	case exchange.Staged:
		t := time.Now()
		f.team.ForWorkers(f.l.My, f.packRowFwdBody)
		f.met.pack.ObserveSince(t)
		t = time.Now()
		f.a2aR.Do()
		f.met.a2a.ObserveSince(t)
		t = time.Now()
		f.team.ForWorkers(f.l.Mz2, f.unpRowFwdBody)
		f.met.unpack.ObserveSince(t)
	case exchange.Fused:
		t := time.Now()
		f.exchR.Do(f.layB, f.fusedRowFwdFn)
		f.met.a2a.ObserveSince(t)
	default:
		t := time.Now()
		f.exchR.Do(f.layB, f.chunkedRowFwdFn)
		f.met.a2a.ObserveSince(t)
	}
}

// transposeRowInv moves the y-complete spectral slab back into the
// z-complete layout.
//
//psdns:hotpath
func (f *PencilReal) transposeRowInv(st exchange.Strategy) {
	switch st {
	case exchange.Staged:
		t := time.Now()
		f.team.ForWorkers(f.l.Mz2, f.packRowInvBody)
		f.met.pack.ObserveSince(t)
		t = time.Now()
		f.a2aR.Do()
		f.met.a2a.ObserveSince(t)
		t = time.Now()
		f.team.ForWorkers(f.l.My, f.unpRowInvBody)
		f.met.unpack.ObserveSince(t)
	case exchange.Fused:
		t := time.Now()
		f.exchR.Do(f.curFour, f.fusedRowInvFn)
		f.met.a2a.ObserveSince(t)
	default:
		t := time.Now()
		f.exchR.Do(f.curFour, f.chunkedRowInvFn)
		f.met.a2a.ObserveSince(t)
	}
}

// FourierToPhysical transforms four=[mz2][wc][ny] (complex) into
// phys=[my][mz][nx] (real), with 1/N³ normalization — y, z, x inverse
// order, bitwise identical to SlabReal. four is consumed as scratch.
//
//psdns:hotpath
func (f *PencilReal) FourierToPhysical(phys []float64, four []complex128) {
	if len(four) != f.FourierLen() || len(phys) != f.PhysicalLen() {
		panic(fmt.Sprintf("pfft: pencil transform wants four %d phys %d, got %d %d",
			f.FourierLen(), f.PhysicalLen(), len(four), len(phys)))
	}
	f.curFour, f.curPhys = four, phys
	t := time.Now()
	f.team.ForWorkers(f.l.Mz2, f.invYBody)
	f.met.fft.ObserveSince(t)
	f.transposeRowInv(f.stratYZ)
	t = time.Now()
	f.team.ForWorkers(f.l.My, f.invZBody)
	f.met.fft.ObserveSince(t)
	f.transposeColInv(f.stratYZ)
	t = time.Now()
	f.team.ForWorkers(f.l.My, f.invXBody)
	f.met.fft.ObserveSince(t)
	f.curFour, f.curPhys = nil, nil
}

// PhysicalToFourier transforms phys=[my][mz][nx] (real) into
// four=[mz2][wc][ny] (complex), unnormalized — x, z, y forward order,
// bitwise identical to SlabReal.
//
//psdns:hotpath
func (f *PencilReal) PhysicalToFourier(four []complex128, phys []float64) {
	if len(four) != f.FourierLen() || len(phys) != f.PhysicalLen() {
		panic(fmt.Sprintf("pfft: pencil transform wants four %d phys %d, got %d %d",
			f.FourierLen(), f.PhysicalLen(), len(four), len(phys)))
	}
	f.curFour, f.curPhys = four, phys
	t := time.Now()
	f.team.ForWorkers(f.l.My, f.fwdXBody)
	f.met.fft.ObserveSince(t)
	f.transposeColFwd(f.stratZY)
	t = time.Now()
	f.team.ForWorkers(f.l.My, f.fwdZBody)
	f.met.fft.ObserveSince(t)
	f.transposeRowFwd(f.stratZY)
	t = time.Now()
	f.team.ForWorkers(f.l.Mz2, f.fwdYBody)
	f.met.fft.ObserveSince(t)
	f.curFour, f.curPhys = nil, nil
}

// runTrialYZ executes the FourierToPhysical direction's two
// sub-exchanges (row inverse, then column inverse) under st, without
// FFT stages: exchange-only trials compare decompositions fairly
// because the per-rank FFT line count is decomposition-invariant.
// Collective over both sub-communicators.
func (f *PencilReal) runTrialYZ(st exchange.Strategy, four []complex128) {
	f.curFour = four
	f.transposeRowInv(st)
	f.transposeColInv(st)
	f.curFour = nil
}

// runTrialZY executes the PhysicalToFourier direction's two
// sub-exchanges (column forward, then row forward) under st.
// Collective over both sub-communicators.
func (f *PencilReal) runTrialZY(st exchange.Strategy, four []complex128) {
	f.curFour = four
	f.transposeColFwd(st)
	f.transposeRowFwd(st)
	f.curFour = nil
}
