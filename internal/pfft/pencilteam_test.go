package pfft

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exchange"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/tuning"
)

// pencilField is the deterministic global test field, computable
// pointwise from global coordinates so every decomposition fills
// bitwise-identical local pencils.
func pencilField(n, gx, gy, gz int) float64 {
	return math.Sin(0.7*float64((gy*n+gz)*n+gx) + 0.3)
}

// slabGlobalReference computes the global forward spectrum and the
// global inverse output of the slab engine at P=1 — the bitwise
// reference every pencil grid must reproduce. Spectrum is indexed
// (gz·N + gy)·Nxh + gx, physical output (gy·N + gz)·N + gx.
func slabGlobalReference(t *testing.T, n int) (refFour []complex128, refPhys []float64) {
	t.Helper()
	var mu sync.Mutex
	if err := mpi.TryRun(1, func(c *mpi.Comm) {
		f := NewSlabRealWorkers(c, n, 1)
		defer f.Close()
		phys := make([]float64, f.PhysicalLen())
		for iy := 0; iy < n; iy++ {
			for iz := 0; iz < n; iz++ {
				for ix := 0; ix < n; ix++ {
					phys[(iy*n+iz)*n+ix] = pencilField(n, ix, iy, iz)
				}
			}
		}
		four := make([]complex128, f.FourierLen())
		f.PhysicalToFourier(four, phys)
		// The inverse consumes four as scratch: snapshot it first.
		snap := append([]complex128(nil), four...)
		out := make([]float64, f.PhysicalLen())
		f.FourierToPhysical(out, four)
		mu.Lock()
		refFour = snap
		refPhys = append([]float64(nil), out...)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	return refFour, refPhys
}

// checkPencilMatchesSlab runs the pencil engine on a pr×pc grid and
// compares every local element of the forward spectrum and of the
// inverse output bitwise against the slab reference.
func checkPencilMatchesSlab(t *testing.T, n, pr, pc, workers int, pair exchange.Pair, refFour []complex128, refPhys []float64) {
	t.Helper()
	tag := fmt.Sprintf("%dx%d workers=%d pair=%s/%s", pr, pc, workers, pair.YZ, pair.ZY)
	if err := mpi.TryRun(pr*pc, func(c *mpi.Comm) {
		row, col := c.CartGrid(pr, pc)
		f := NewPencilReal(col, row, n, workers, pair)
		defer f.Close()
		l := f.Layout()
		phys := make([]float64, f.PhysicalLen())
		for iy := 0; iy < l.My; iy++ {
			for iz := 0; iz < l.Mz; iz++ {
				for ix := 0; ix < n; ix++ {
					phys[(iy*l.Mz+iz)*n+ix] =
						pencilField(n, ix, l.YRank*l.My+iy, l.ZRank*l.Mz+iz)
				}
			}
		}
		four := make([]complex128, f.FourierLen())
		f.PhysicalToFourier(four, phys)
		for iz := 0; iz < l.Mz2; iz++ {
			gz := l.YRank*l.Mz2 + iz
			for ix := 0; ix < l.Wc; ix++ {
				gx := l.XLo + ix
				for gy := 0; gy < n; gy++ {
					got := four[(iz*l.Wc+ix)*n+gy]
					want := refFour[(gz*n+gy)*l.Nxh+gx]
					if got != want {
						panic(fmt.Sprintf("%s rank %d: forward differs from slab at k=(%d,%d,%d): %v vs %v",
							tag, c.Rank(), gx, gy, gz, got, want))
					}
				}
			}
		}
		out := make([]float64, f.PhysicalLen())
		f.FourierToPhysical(out, four)
		for iy := 0; iy < l.My; iy++ {
			gy := l.YRank*l.My + iy
			for iz := 0; iz < l.Mz; iz++ {
				gz := l.ZRank*l.Mz + iz
				for ix := 0; ix < n; ix++ {
					got := out[(iy*l.Mz+iz)*n+ix]
					want := refPhys[(gy*n+gz)*n+ix]
					if got != want {
						panic(fmt.Sprintf("%s rank %d: inverse differs from slab at (%d,%d,%d): %v vs %v",
							tag, c.Rank(), ix, gy, gz, got, want))
					}
				}
			}
		}
	}); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
}

// The pencil engine must be bitwise identical to the slab engine for
// every factorization of every rank count, every worker-team size and
// both exchange-strategy families — forward and inverse. The per-axis
// FFT order (x, z, y forward; y, z, x inverse) matches the slab
// engine's, and the fft batches are stride-invariant, so this is exact
// equality, not a tolerance.
func TestPencilSlabBitwiseIdentity(t *testing.T) {
	const n = 16
	refFour, refPhys := slabGlobalReference(t, n)
	pairs := []exchange.Pair{
		exchange.Both(exchange.Staged),
		{YZ: exchange.ChunkedFused, ZY: exchange.Fused},
	}
	for _, p := range []int{1, 2, 4, 8} {
		for _, d := range tuning.Decompositions(n, p) {
			if !d.IsPencil() {
				continue
			}
			for _, workers := range []int{1, 4} {
				for _, pair := range pairs {
					checkPencilMatchesSlab(t, n, d.Pr, d.Pc, workers, pair, refFour, refPhys)
				}
			}
		}
	}
}

// Past the slab scaling wall — more ranks than planes — the pencil
// grids are the only valid layouts, and they must still reproduce the
// slab result bitwise. N=16 on 32 ranks is the ISSUE acceptance
// geometry.
func TestPencilPastSlabWallBitwiseIdentity(t *testing.T) {
	const n, p = 16, 32
	if len(tuning.Decompositions(n, p)) == 0 || tuning.DecompSlab.Valid(n, p) {
		t.Fatalf("want pencil-only decompositions at N=%d P=%d", n, p)
	}
	refFour, refPhys := slabGlobalReference(t, n)
	for _, d := range []tuning.Decomp{tuning.Pencil(4, 8), tuning.Pencil(16, 2)} {
		checkPencilMatchesSlab(t, n, d.Pr, d.Pc, 2,
			exchange.Both(exchange.ChunkedFused), refFour, refPhys)
	}
}

// The pencil steady state must stay allocation-free like every slab
// strategy: plans, batches, bodies and staging buffers are all built
// at construction.
func TestPencilRealSteadyStateZeroAllocs(t *testing.T) {
	const n, runs = 32, 10
	for _, pair := range []exchange.Pair{
		exchange.Both(exchange.Staged),
		exchange.Both(exchange.ChunkedFused),
	} {
		if err := mpi.TryRun(4, func(c *mpi.Comm) {
			row, col := c.CartGrid(2, 2)
			f := NewPencilReal(col, row, n, 2, pair)
			defer f.Close()
			four := make([]complex128, f.FourierLen())
			phys := make([]float64, f.PhysicalLen())
			for i := range phys {
				phys[i] = float64(i%13) * 0.25
			}
			cycle := func() {
				f.PhysicalToFourier(four, phys)
				f.FourierToPhysical(phys, four)
			}
			for i := 0; i < 3; i++ {
				cycle()
			}
			if c.Rank() == 0 {
				if avg := testing.AllocsPerRun(runs, cycle); avg != 0 {
					panic(fmt.Sprintf("pencil %s/%s steady state allocates %.2f per cycle",
						pair.YZ, pair.ZY, avg))
				}
			} else {
				for i := 0; i < runs+1; i++ {
					cycle()
				}
			}
		}); err != nil {
			t.Fatalf("pair %s/%s: %v", pair.YZ, pair.ZY, err)
		}
	}
}

// NewRealTuned with DecompAuto searches slab and every pencil grid; a
// warm cache must reconstruct the winner with zero trial exchanges and
// bitwise-identical output.
func TestRealTunedAutoWarmCacheSkipsTrials(t *testing.T) {
	const n, p = 16, 4
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	reg.SetOn(true)
	if err := mpi.RunWith(p, reg, func(c *mpi.Comm) {
		cfg := tuning.Config{Cache: tuning.Open(dir)}
		trials := c.Metrics().CounterRank("tune.trials", c.Rank())

		cold := NewRealTuned(c, n, 2, tuning.DecompAuto, cfg)
		defer cold.Close()
		after := trials.Value()
		if after == 0 {
			panic(fmt.Sprintf("rank %d: cold auto-decomposition tuning ran no trials", c.Rank()))
		}

		warm := NewRealTuned(c, n, 2, tuning.DecompAuto, cfg)
		defer warm.Close()
		if got := trials.Value(); got != after {
			panic(fmt.Sprintf("rank %d: warm construction ran %d trial exchanges, want 0", c.Rank(), got-after))
		}
		if fmt.Sprintf("%T", warm) != fmt.Sprintf("%T", cold) {
			panic(fmt.Sprintf("rank %d: warm engine %T differs from trial-selected %T", c.Rank(), warm, cold))
		}

		phys := make([]float64, cold.PhysicalLen())
		for i := range phys {
			phys[i] = float64((c.Rank()*31+i)%17) * 0.5
		}
		a := make([]complex128, cold.FourierLen())
		b := make([]complex128, warm.FourierLen())
		scratch := make([]float64, len(phys))
		copy(scratch, phys)
		cold.PhysicalToFourier(a, scratch)
		copy(scratch, phys)
		warm.PhysicalToFourier(b, scratch)
		for i := range a {
			if a[i] != b[i] {
				panic(fmt.Sprintf("rank %d: cache-hit engine differs from trial-selected at %d", c.Rank(), i))
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// An explicit pencil decomposition pins the layout: the tuned
// constructor must return the pencil engine on exactly that grid, cold
// and warm, and reject grids that cannot lay out the field.
func TestRealTunedExplicitPencil(t *testing.T) {
	const n, p = 16, 4
	dir := t.TempDir()
	if err := mpi.TryRun(p, func(c *mpi.Comm) {
		cfg := tuning.Config{Cache: tuning.Open(dir)}
		for _, label := range []string{"cold", "warm"} {
			tr := NewRealTuned(c, n, 1, tuning.Pencil(2, 2), cfg)
			eng, ok := tr.(*PencilReal)
			if !ok {
				panic(fmt.Sprintf("rank %d: %s explicit-pencil engine is %T, want *PencilReal", c.Rank(), label, tr))
			}
			if l := eng.Layout(); l.Pr != 2 || l.Pc != 2 {
				panic(fmt.Sprintf("rank %d: %s engine on %dx%d grid, want 2x2", c.Rank(), label, l.Pr, l.Pc))
			}
			tr.Close()
		}
	}); err != nil {
		t.Fatal(err)
	}
	err := mpi.TryRun(p, func(c *mpi.Comm) {
		NewRealTuned(c, n, 1, tuning.Pencil(3, 2), tuning.Config{})
	})
	if err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("invalid grid error = %v, want decomposition-validity panic", err)
	}
}

// The pencil engine has no asynchrony-tolerant mode; requesting the AT
// strategy must fail loudly at construction, not silently downgrade.
func TestPencilRejectsATStrategy(t *testing.T) {
	err := mpi.TryRun(4, func(c *mpi.Comm) {
		row, col := c.CartGrid(2, 2)
		NewPencilReal(col, row, 16, 1, exchange.Both(exchange.AT))
	})
	if err == nil || !strings.Contains(err.Error(), "asynchrony-tolerant") {
		t.Fatalf("AT construction error = %v, want asynchrony-tolerant rejection", err)
	}
}

// A crash schedule follows a rank into the pencil engine's
// sub-communicator exchanges: the scheduled operation count is reached
// inside a column- or row-group collective, and the abort must surface
// as the typed CrashError naming the world rank on every peer.
func TestPencilCrashInsideSubExchangeSurfacesTyped(t *testing.T) {
	const n, p = 16, 4
	err := mpi.TryRun(p, func(c *mpi.Comm) {
		row, col := c.CartGrid(2, 2)
		f := NewPencilReal(col, row, n, 1, exchange.Both(exchange.Staged))
		defer f.Close()
		four := make([]complex128, f.FourierLen())
		phys := make([]float64, f.PhysicalLen())
		for i := 0; i < 50; i++ {
			f.PhysicalToFourier(four, phys)
			f.FourierToPhysical(phys, four)
		}
	}, mpi.WithWatchdog(mpi.Watchdog{DeadlockAfter: 2 * time.Second, Poll: 5 * time.Millisecond}),
		mpi.WithFaults(&mpi.Faults{Crash: map[int]int{3: 40}}))
	var ce *mpi.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T (%v) is not *mpi.CrashError", err, err)
	}
	var re *mpi.RankError
	if !errors.As(err, &re) || re.Rank != 3 {
		t.Fatalf("error %v does not name world rank 3", err)
	}
}

// A rank that stops participating mid-run deadlocks its peers inside a
// sub-communicator exchange; the inherited watchdog must wake them
// with a typed StallError instead of hanging the test binary.
func TestPencilStallInsideSubExchangeSurfacesTyped(t *testing.T) {
	const n, p = 16, 4
	err := mpi.TryRun(p, func(c *mpi.Comm) {
		row, col := c.CartGrid(2, 2)
		f := NewPencilReal(col, row, n, 1, exchange.Both(exchange.ChunkedFused))
		defer f.Close()
		four := make([]complex128, f.FourierLen())
		phys := make([]float64, f.PhysicalLen())
		f.PhysicalToFourier(four, phys)
		f.FourierToPhysical(phys, four)
		if c.Rank() == 3 {
			return // abandons the second transform; peers block in the exchange
		}
		f.PhysicalToFourier(four, phys)
	}, mpi.WithWatchdog(mpi.Watchdog{DeadlockAfter: 300 * time.Millisecond, Poll: 5 * time.Millisecond}))
	var st *mpi.StallError
	if !errors.As(err, &st) {
		t.Fatalf("error %T (%v) is not *mpi.StallError", err, err)
	}
}
