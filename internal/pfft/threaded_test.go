package pfft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mpi"
)

func TestThreadedMatchesSerialExactly(t *testing.T) {
	// The hybrid rank+threads transform must give bit-identical results
	// for every team size (same per-line FFTs, only scheduling differs).
	n, p := 16, 2
	for _, threads := range []int{1, 2, 4, 8} {
		mpi.Run(p, func(c *mpi.Comm) {
			ref := NewSlabReal(c, n)
			thr := NewSlabRealThreaded(c, n, threads)
			if thr.Threads() != threads {
				t.Fatalf("team size %d", thr.Threads())
			}
			rng := rand.New(rand.NewSource(int64(c.Rank()) + 55))
			phys := make([]float64, ref.PhysicalLen())
			for i := range phys {
				phys[i] = rng.NormFloat64()
			}
			fr := make([]complex128, ref.FourierLen())
			ft := make([]complex128, thr.FourierLen())
			ref.PhysicalToFourier(fr, phys)
			thr.PhysicalToFourier(ft, phys)
			for i := range fr {
				if fr[i] != ft[i] {
					t.Fatalf("threads=%d: spectra differ at %d", threads, i)
				}
			}
			pr := make([]float64, ref.PhysicalLen())
			pt := make([]float64, thr.PhysicalLen())
			frc := append([]complex128(nil), fr...)
			ref.FourierToPhysical(pr, frc)
			copy(frc, fr)
			thr.FourierToPhysical(pt, frc)
			for i := range pr {
				if pr[i] != pt[i] {
					t.Fatalf("threads=%d: physical fields differ at %d", threads, i)
				}
			}
		})
	}
}

func TestThreadedRoundTrip(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		f := NewSlabRealThreaded(c, 8, 3)
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		phys := make([]float64, f.PhysicalLen())
		for i := range phys {
			phys[i] = rng.NormFloat64()
		}
		orig := append([]float64(nil), phys...)
		four := make([]complex128, f.FourierLen())
		f.PhysicalToFourier(four, phys)
		back := make([]float64, f.PhysicalLen())
		f.FourierToPhysical(back, four)
		for i := range back {
			if math.Abs(back[i]-orig[i]) > 1e-10 {
				t.Fatalf("round trip at %d: %g vs %g", i, back[i], orig[i])
			}
		}
	})
}

func TestThreadedHybridConfigurationsAgree(t *testing.T) {
	// The hybrid design point: 2 ranks × 4 threads must equal 8 ranks ×
	// 1 thread (same N), the trade §4.1 exploits to grow message sizes.
	n := 16
	spectra := map[string][]complex128{}
	run := func(label string, ranks, threads int) {
		mpi.Run(ranks, func(c *mpi.Comm) {
			f := NewSlabRealThreaded(c, n, threads)
			// Build the same global field on every layout.
			phys := make([]float64, f.PhysicalLen())
			my := f.Slab().MY()
			for iy := 0; iy < my; iy++ {
				gy := f.Slab().YLo() + iy
				for iz := 0; iz < n; iz++ {
					for ix := 0; ix < n; ix++ {
						phys[(iy*n+iz)*n+ix] = float64((gy*n+iz)*n+ix%7) * 0.001
					}
				}
			}
			four := make([]complex128, f.FourierLen())
			f.PhysicalToFourier(four, phys)
			if c.Rank() == 0 {
				spectra[label] = append([]complex128(nil), four...)
			}
		})
	}
	run("2x4", 2, 4)
	run("8x1", 8, 1)
	// Rank 0 of the 8x1 run holds the first quarter of the 2x4 rank 0
	// slab; compare the overlap.
	a := spectra["2x4"]
	b := spectra["8x1"]
	if len(b) >= len(a) {
		t.Fatalf("slab sizes: %d vs %d", len(a), len(b))
	}
	for i := range b {
		if cmplx.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("hybrid layouts disagree at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
