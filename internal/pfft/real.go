package pfft

import (
	"fmt"
	"runtime"

	"repro/internal/exchange"
	"repro/internal/hw"
	"repro/internal/mpi"
	"repro/internal/pool"
	"repro/internal/tuning"
)

// Real is the interface of the distributed real-field DNS transforms:
// real physical fields, conjugate-symmetric half-spectra, 1/N³
// normalization on the inverse. SlabReal and PencilReal implement it
// with bitwise-identical results for every valid decomposition.
type Real interface {
	FourierToPhysical(phys []float64, four []complex128)
	PhysicalToFourier(four []complex128, phys []float64)
	FourierLen() int
	PhysicalLen() int
	Workers() int
	Close()
}

// trialRunner is the tuned constructor's view of a candidate engine:
// one collective exchange trial per transpose direction.
type trialRunner interface {
	runTrialYZ(st exchange.Strategy, four []complex128)
	runTrialZY(st exchange.Strategy, four []complex128)
	FourierLen() int
	Close()
}

// runTrialYZ adapts SlabReal's y→z trial to the trialRunner interface.
func (f *SlabReal) runTrialYZ(st exchange.Strategy, four []complex128) { f.runTrial(st, four) }

// setStrategies pins the per-direction winners on a trial engine.
func (f *SlabReal) setStrategies(yz, zy exchange.Strategy) {
	f.stratYZ, f.stratZY = yz, zy
	f.setStrategyGauges()
}

func (f *PencilReal) setStrategies(yz, zy exchange.Strategy) {
	f.stratYZ, f.stratZY = yz, zy
	f.setStrategyGauges()
}

// NewRealTuned builds the DNS transform for decomposition d, searching
// cfg.Space with the whole-step trial protocol and persisting the
// winner in the tuning cache:
//
//   - d slab (the zero value): exactly NewSlabRealTuned — strategy ×
//     workers × wire-precision search under the "slab" cache key.
//   - d an explicit Pr×Pc pencil: the grid is fixed, the strategy and
//     worker dimensions are searched, under a per-grid cache key
//     ("pencil-PRxPC").
//   - d DecompAuto: the decomposition itself becomes a tune dimension
//     — candidates are cfg.Space.Decomps (DecompAuto entries expanded,
//     invalid entries dropped), or every valid decomposition of (N, P)
//     when the space leaves the dimension empty — under the "real"
//     cache key. Slab, when valid, is enumerated first, so the
//     max-over-ranks tie-break never abandons it for a statistical
//     wash; at P > N only pencil grids are valid and the search picks
//     among them.
//
// Trials are exchange-only (per-rank FFT work is identical across
// decompositions), timed per transpose direction and memoized per
// (engine, direction, strategy), so a candidate pair costs two trial
// runs, not four. A cache hit constructs the cached point directly
// with zero trial exchanges. The pencil engine is double-precision
// only, so pencil candidates ignore the wire-precision dimension.
// Collective.
func NewRealTuned(comm *mpi.Comm, n, workers int, d tuning.Decomp, cfg tuning.Config) Real {
	p := comm.Size()
	switch {
	case d.IsSlab():
		return NewSlabRealTuned(comm, n, workers, cfg)
	case d.IsPencil():
		if !d.Valid(n, p) {
			panic(fmt.Sprintf("pfft: decomposition %s invalid for N=%d P=%d (Pr·Pc=P, Pr|N, Pc|N, Pc ≤ N/2+1)",
				d, n, p))
		}
		return tunedReal(comm, n, workers, "pencil-"+d.String(), []tuning.Decomp{d}, cfg)
	case d.IsAuto():
		decomps := expandDecomps(cfg.Space.Decomps, n, p)
		if len(decomps) == 0 {
			panic(fmt.Sprintf("pfft: no valid decomposition for N=%d P=%d", n, p))
		}
		return tunedReal(comm, n, workers, "real", decomps, cfg)
	default:
		panic(fmt.Sprintf("pfft: malformed decomposition %+v", d))
	}
}

// expandDecomps resolves the space's decomposition dimension against
// (n, p): empty means every valid decomposition, DecompAuto entries
// expand likewise, and invalid entries are dropped.
func expandDecomps(ds []tuning.Decomp, n, p int) []tuning.Decomp {
	if len(ds) == 0 {
		return tuning.Decompositions(n, p)
	}
	seen := map[tuning.Decomp]bool{}
	var out []tuning.Decomp
	add := func(d tuning.Decomp) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, d := range ds {
		if d.IsAuto() {
			for _, e := range tuning.Decompositions(n, p) {
				add(e)
			}
		} else if d.Valid(n, p) {
			add(d)
		}
	}
	return out
}

// realPoints enumerates cfg.Space over an explicit decomposition list:
// NP and PerSlab are foreign dimensions here (canonicalized away), and
// pencil points collapse the wire-precision dimension (the pencil
// engine is double-precision only). Space tie-break order is kept.
func realPoints(space tuning.Space, workers int, decomps []tuning.Decomp) []tuning.Point {
	space.Decomps = decomps
	type rk struct {
		pr, pc   int
		st, stZY exchange.Strategy
		workers  int
		single   bool
	}
	seen := map[rk]bool{}
	var out []tuning.Point
	for _, pt := range space.Points(0, workers) {
		pt.NP, pt.PerSlab = 0, false
		if pt.Decomp().IsPencil() {
			pt.Single = false
		}
		k := rk{pt.Pr, pt.Pc, pt.Strategy, pt.StrategyZY, pt.Workers, pt.Single}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, pt)
	}
	return out
}

// realFromPoint constructs the engine a tuned point describes, with
// its per-direction strategies pinned — the zero-trial cache-hit path.
func realFromPoint(comm *mpi.Comm, n int, pt tuning.Point) Real {
	if d := pt.Decomp(); d.IsPencil() {
		commY, commZ := gridComms(comm, d)
		return NewPencilReal(commY, commZ, n, pt.Workers, exchange.Pair{YZ: pt.Strategy, ZY: pt.StrategyZY})
	}
	eng := newSlabReal(comm, n, pt.Workers, pt.Strategy, 0, 0, pt.Single)
	eng.stratZY = pt.StrategyZY
	eng.setStrategyGauges()
	return eng
}

// gridComms splits comm into the Pr-rank column (commY) and Pc-rank
// row (commZ) communicators of a Pr×Pc grid. Collective.
func gridComms(comm *mpi.Comm, d tuning.Decomp) (commY, commZ *mpi.Comm) {
	row, col := comm.CartGrid(d.Pr, d.Pc)
	return col, row
}

// tunedReal runs the decomposition × strategy × workers search under
// the given cache key. Every rank enumerates the same candidate list,
// builds trial engines lazily in candidate order (keeping the
// collective construction sequence symmetric), memoizes one trial per
// (engine, direction, strategy), and resolves the sum-of-directions
// cost table through the max-over-ranks protocol. Collective.
func tunedReal(comm *mpi.Comm, n, workers int, engineKey string, decomps []tuning.Decomp, cfg tuning.Config) Real {
	key := tuning.Key{
		Engine:   engineKey,
		N:        n,
		P:        comm.Size(),
		Maxprocs: runtime.GOMAXPROCS(0),
		Machine:  hw.Fingerprint(),
	}
	if pt, ok := cfg.Lookup(comm, key); ok {
		return realFromPoint(comm, n, pt)
	}
	pts := realPoints(cfg.Space, workers, decomps)
	type group struct {
		d       tuning.Decomp
		workers int
		single  bool
	}
	type dirKey struct {
		g  group
		st exchange.Strategy
		zy bool
	}
	engines := map[group]trialRunner{}
	trials := map[group][]complex128{}
	times := map[dirKey]float64{}
	mine := make([]float64, len(pts))
	for i, pt := range pts {
		g := group{pt.Decomp(), pt.Workers, pt.Single}
		eng := engines[g]
		if eng == nil {
			if g.d.IsPencil() {
				commY, commZ := gridComms(comm, g.d)
				eng = NewPencilReal(commY, commZ, n, g.workers, exchange.Both(exchange.Staged))
			} else {
				eng = newSlabReal(comm, n, g.workers, exchange.Staged, 0, 0, g.single)
			}
			engines[g] = eng
			trials[g] = pool.GetComplex(eng.FourierLen())
		}
		trial := trials[g]
		kyz := dirKey{g, pt.Strategy, false}
		if _, ok := times[kyz]; !ok {
			st := pt.Strategy
			times[kyz] = tuning.TrialBest(comm, tuning.Trials, func() { eng.runTrialYZ(st, trial) })
		}
		kzy := dirKey{g, pt.StrategyZY, true}
		if _, ok := times[kzy]; !ok {
			st := pt.StrategyZY
			times[kzy] = tuning.TrialBest(comm, tuning.Trials, func() { eng.runTrialZY(st, trial) })
		}
		mine[i] = times[kyz] + times[kzy]
	}
	win, cost := tuning.ResolveTimes(comm, mine)
	pt := pts[win]
	cfg.Store(comm, key, pt, cost)
	winner := group{pt.Decomp(), pt.Workers, pt.Single}
	keep := engines[winner]
	for g, e := range engines {
		pool.PutComplex(trials[g])
		if e != keep {
			e.Close()
		}
	}
	switch eng := keep.(type) {
	case *SlabReal:
		eng.setStrategies(pt.Strategy, pt.StrategyZY)
		return eng
	default:
		peng := keep.(*PencilReal)
		peng.setStrategies(pt.Strategy, pt.StrategyZY)
		return peng
	}
}
