package pfft

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/exchange"
	"repro/internal/mpi"
)

// With no injected delay and a generous deadline the asynchrony-
// tolerant transform must be bitwise identical to the synchronous
// staged reference: every bounded exchange completes inside the wait,
// the gather runs on current-epoch slabs, and the fused gather kernels
// are the exact ones the Fused strategy runs.
func TestSlabRealATZeroDelayBitwiseIdentity(t *testing.T) {
	const n = 28
	for _, p := range []int{1, 2, 4} {
		p := p
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			if err := mpi.TryRun(p, func(c *mpi.Comm) {
				ref := NewSlabRealStrategy(c, n, 1, exchange.Staged)
				defer ref.Close()
				fl, pl := ref.FourierLen(), ref.PhysicalLen()

				rng := rand.New(rand.NewSource(int64(7 + c.Rank())))
				physIn := make([]float64, pl)
				for i := range physIn {
					physIn[i] = rng.NormFloat64()
				}
				refFour := make([]complex128, fl)
				refPhys := make([]float64, pl)
				scratch := make([]float64, pl)
				copy(scratch, physIn)
				ref.PhysicalToFourier(refFour, scratch)
				fourScratch := make([]complex128, fl)
				copy(fourScratch, refFour)
				ref.FourierToPhysical(refPhys, fourScratch)

				for _, w := range []int{1, 2} {
					f := NewSlabRealAT(c, n, w, 1, 2*time.Second)
					if f.Strategy() != exchange.AT {
						panic("NewSlabRealAT did not pin the at strategy")
					}
					four := make([]complex128, fl)
					phys := make([]float64, pl)
					copy(phys, physIn)
					f.PhysicalToFourier(four, phys)
					for i := range four {
						if four[i] != refFour[i] {
							panic(fmt.Sprintf("rank %d workers=%d: AT forward differs at %d: %v vs %v",
								c.Rank(), w, i, four[i], refFour[i]))
						}
					}
					out := make([]float64, pl)
					f.FourierToPhysical(out, four)
					for i := range out {
						if out[i] != refPhys[i] {
							panic(fmt.Sprintf("rank %d workers=%d: AT inverse differs at %d: %v vs %v",
								c.Rank(), w, i, out[i], refPhys[i]))
						}
					}
					if max, _, slabs, calls := f.TakeStaleness(); max != 0 || slabs != 0 || calls != 2 {
						panic(fmt.Sprintf("rank %d: zero-delay transform staleness max=%d slabs=%d calls=%d",
							c.Rank(), max, slabs, calls))
					}
					f.Close()
				}
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
