// Package cuda is a software model of the CUDA execution constructs
// the paper's algorithm is built from: devices, in-order streams,
// events, asynchronous 1D/2D memory copies and kernel launches. The
// "device" executes on host memory, but the concurrency semantics —
// in-order execution within a stream, overlap between streams, event
// ordering across streams, host asynchrony of every launch — are those
// of CUDA, which is what the batched asynchronous algorithm (Fig 4)
// actually depends on. A separate cost model (cost.go) carries the
// performance characteristics of the real hardware for the simulator.
package cuda

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/metrics"
	"repro/internal/transpose"
)

// Device owns a set of streams, mirroring one GPU.
type Device struct {
	id      int
	mu      sync.Mutex
	streams []*Stream
	met     atomic.Pointer[devMetrics]
}

// devMetrics are the instrumentation handles shared by all streams of
// one device: operations executed, bytes moved by copy engines and
// zero-copy kernels, per-op busy time (whose sum over a window is the
// stream occupancy), and event record-to-completion latency. All
// fields are nil-safe no-op handles until SetMetrics installs real
// ones.
type devMetrics struct {
	ops   *metrics.Counter
	bytes *metrics.Counter
	busy  *metrics.Histogram
	evLat *metrics.Histogram
}

// NewDevice creates device id (the cudaSetDevice analogue is simply
// which Device value a thread launches work on).
func NewDevice(id int) *Device {
	d := &Device{id: id}
	d.met.Store(&devMetrics{})
	return d
}

// SetMetrics attaches rank-labelled instrumentation to the device and
// every stream created on it. Call once during setup, before launching
// work; rank identifies the owning MPI rank.
func (d *Device) SetMetrics(reg *metrics.Registry, rank int) {
	d.met.Store(&devMetrics{
		ops:   reg.CounterRank("cuda.stream.ops", rank),
		bytes: reg.CounterRank("cuda.xfer.bytes", rank),
		busy:  reg.HistogramRank("cuda.stream.busy", rank),
		evLat: reg.HistogramRank("cuda.event.latency", rank),
	})
}

func (d *Device) m() *devMetrics { return d.met.Load() }

// xferBytes reports the wire size of n elements of T for transfer
// accounting.
func xferBytes[T any](n int) int64 {
	var z T
	return int64(n) * int64(unsafe.Sizeof(z))
}

// ID reports the device ordinal.
func (d *Device) ID() int { return d.id }

// NewStream creates an asynchronous in-order work queue on the device.
func (d *Device) NewStream(name string) *Stream {
	s := &Stream{name: name, dev: d, ops: make(chan streamOp, 1024)}
	s.wg.Add(1)
	go s.run()
	d.mu.Lock()
	d.streams = append(d.streams, s)
	d.mu.Unlock()
	return s
}

// Synchronize blocks until every stream of the device has drained
// (cudaDeviceSynchronize).
func (d *Device) Synchronize() {
	d.mu.Lock()
	streams := append([]*Stream(nil), d.streams...)
	d.mu.Unlock()
	for _, s := range streams {
		s.Synchronize()
	}
}

// Close shuts down all stream workers. The device must not be used
// afterwards.
func (d *Device) Close() {
	d.mu.Lock()
	streams := append([]*Stream(nil), d.streams...)
	d.streams = nil
	d.mu.Unlock()
	for _, s := range streams {
		close(s.ops)
		s.wg.Wait()
	}
}

// streamOp is one queue entry; control ops (event records, sync
// markers) execute even after a device error so the host never hangs.
type streamOp struct {
	fn      func()
	control bool
}

// Stream is an in-order asynchronous work queue (cudaStream_t).
type Stream struct {
	name string
	dev  *Device
	ops  chan streamOp
	wg   sync.WaitGroup

	mu  sync.Mutex
	err any // sticky device error (a panicking kernel), as on real CUDA
}

func (s *Stream) run() {
	defer s.wg.Done()
	for op := range s.ops {
		if s.failed() && !op.control {
			// A sticky error poisons the stream: remaining data work
			// is drained without executing, like a device in error
			// state; control ops still fire so waiters unblock.
			continue
		}
		func() {
			defer func() {
				if e := recover(); e != nil {
					s.mu.Lock()
					s.err = e
					s.mu.Unlock()
				}
			}()
			// Control ops (event records, sync markers) are queue
			// plumbing, not device work: excluded from busy time.
			if m := s.dev.m(); !op.control && m.busy.Enabled() {
				t0 := time.Now()
				op.fn()
				m.busy.Observe(time.Since(t0).Seconds())
				m.ops.Inc()
			} else {
				op.fn()
			}
		}()
	}
}

func (s *Stream) failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err != nil
}

// Err reports the sticky device error, if any (cudaGetLastError).
func (s *Stream) Err() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Name reports the stream label.
func (s *Stream) Name() string { return s.name }

// Launch enqueues fn on the stream and returns immediately; fn runs
// after all previously enqueued work (kernel-launch semantics).
func (s *Stream) Launch(name string, fn func()) {
	_ = name
	s.ops <- streamOp{fn: fn}
}

// Record enqueues an event into the stream and returns it; the event
// completes when the stream reaches it (cudaEventRecord). The latency
// from record to completion — how far the host runs ahead of the
// device — is observed into cuda.event.latency when metrics are on.
func (s *Stream) Record() *Event {
	ev := &Event{done: make(chan struct{})}
	if m := s.dev.m(); m.evLat.Enabled() {
		t0 := time.Now()
		s.ops <- streamOp{fn: func() {
			m.evLat.Observe(time.Since(t0).Seconds())
			close(ev.done)
		}, control: true}
		return ev
	}
	s.ops <- streamOp{fn: func() { close(ev.done) }, control: true}
	return ev
}

// Wait makes subsequent work on this stream wait until ev completes
// (cudaStreamWaitEvent): the wait occupies the stream, not the host.
func (s *Stream) Wait(ev *Event) {
	s.ops <- streamOp{fn: func() { <-ev.done }, control: true}
}

// Synchronize blocks the host until all currently enqueued work has
// executed (cudaStreamSynchronize). It panics with the sticky device
// error if a kernel failed, so failures surface at the next host
// synchronization point exactly as CUDA error checking does.
func (s *Stream) Synchronize() {
	done := make(chan struct{})
	s.ops <- streamOp{fn: func() { close(done) }, control: true}
	<-done
	if e := s.Err(); e != nil {
		panic(fmt.Sprintf("cuda: device error on stream %s: %v", s.name, e))
	}
}

// Event marks a point in a stream (cudaEvent_t).
type Event struct {
	done chan struct{}
}

// Synchronize blocks the host until the event completes.
func (e *Event) Synchronize() { <-e.done }

// Query reports whether the event has completed without blocking.
func (e *Event) Query() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// CompletedEvent returns an event that is already complete, useful as
// the dependency of the first pipeline stage.
func CompletedEvent() *Event {
	e := &Event{done: make(chan struct{})}
	close(e.done)
	return e
}

// MemcpyAsync enqueues a contiguous copy on the stream
// (cudaMemcpyAsync on pinned memory).
func MemcpyAsync[T any](s *Stream, dst, src []T) {
	if len(dst) < len(src) {
		panic(fmt.Sprintf("cuda: memcpy dst %d < src %d", len(dst), len(src)))
	}
	n := len(src)
	s.dev.m().bytes.Add(xferBytes[T](n))
	s.Launch("memcpy", func() { copy(dst[:n], src[:n]) })
}

// Memcpy2DAsync enqueues a strided copy on the stream: nrows rows of
// rowLen elements, with independent destination and source strides —
// the cudaMemcpy2DAsync call of §4.2, executed by the copy engine (no
// SMs consumed on real hardware).
func Memcpy2DAsync[T any](s *Stream, dst []T, dstStride int, src []T, srcStride, rowLen, nrows int) {
	s.dev.m().bytes.Add(xferBytes[T](rowLen * nrows))
	s.Launch("memcpy2d", func() {
		transpose.CopyStrided(dst, dstStride, src, srcStride, rowLen, nrows)
	})
}

// ZeroCopyGather enqueues a custom zero-copy kernel performing an
// arbitrary gather: dst[i] = src[idx[i]]. On real hardware this runs
// on SM threads reading pinned host memory directly (§4.2); here it
// executes the same access pattern.
func ZeroCopyGather[T any](s *Stream, dst []T, src []T, idx []int) {
	s.dev.m().bytes.Add(xferBytes[T](len(idx)))
	s.Launch("zerocopy-gather", func() {
		for i, j := range idx {
			dst[i] = src[j]
		}
	})
}

// ZeroCopyScatter enqueues the inverse pattern: dst[idx[i]] = src[i],
// used for unpacking received all-to-all blocks into non-contiguous
// locations.
func ZeroCopyScatter[T any](s *Stream, dst []T, src []T, idx []int) {
	s.dev.m().bytes.Add(xferBytes[T](len(idx)))
	s.Launch("zerocopy-scatter", func() {
		for i, j := range idx {
			dst[j] = src[i]
		}
	})
}
