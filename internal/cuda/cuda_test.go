package cuda

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func TestStreamExecutesInOrder(t *testing.T) {
	d := NewDevice(0)
	defer d.Close()
	s := d.NewStream("compute")
	var seq []int
	for i := 0; i < 10; i++ {
		i := i
		s.Launch("op", func() { seq = append(seq, i) })
	}
	s.Synchronize()
	for i, v := range seq {
		if v != i {
			t.Fatalf("out of order: %v", seq)
		}
	}
}

func TestLaunchIsAsynchronousToHost(t *testing.T) {
	d := NewDevice(0)
	defer d.Close()
	s := d.NewStream("transfer")
	gate := make(chan struct{})
	var ran atomic.Bool
	s.Launch("blocked", func() { <-gate; ran.Store(true) })
	// Host continues immediately even though the stream is blocked.
	if ran.Load() {
		t.Fatal("op ran before gate opened")
	}
	close(gate)
	s.Synchronize()
	if !ran.Load() {
		t.Fatal("op never ran")
	}
}

func TestEventOrdersAcrossStreams(t *testing.T) {
	// The Fig 4 pattern: compute on stream A must complete before the
	// D2H copy on stream B touches the buffer.
	d := NewDevice(0)
	defer d.Close()
	compute := d.NewStream("compute")
	transfer := d.NewStream("transfer")
	for iter := 0; iter < 50; iter++ {
		buf := make([]int, 1)
		compute.Launch("fft", func() { buf[0] = 42 })
		ev := compute.Record()
		transfer.Wait(ev)
		var got int
		transfer.Launch("d2h", func() { got = buf[0] })
		transfer.Synchronize()
		if got != 42 {
			t.Fatalf("iter %d: transfer observed %d before compute finished", iter, got)
		}
	}
}

func TestEventQueryAndSynchronize(t *testing.T) {
	d := NewDevice(0)
	defer d.Close()
	s := d.NewStream("s")
	gate := make(chan struct{})
	s.Launch("slow", func() { <-gate })
	ev := s.Record()
	if ev.Query() {
		t.Fatal("event complete while stream blocked")
	}
	close(gate)
	ev.Synchronize()
	if !ev.Query() {
		t.Fatal("event not complete after synchronize")
	}
}

func TestCompletedEvent(t *testing.T) {
	if !CompletedEvent().Query() {
		t.Fatal("CompletedEvent not complete")
	}
}

func TestDeviceSynchronizeDrainsAllStreams(t *testing.T) {
	d := NewDevice(3)
	defer d.Close()
	if d.ID() != 3 {
		t.Fatal("device id")
	}
	var count atomic.Int32
	for i := 0; i < 4; i++ {
		s := d.NewStream("s")
		for j := 0; j < 5; j++ {
			s.Launch("inc", func() { count.Add(1) })
		}
	}
	d.Synchronize()
	if count.Load() != 20 {
		t.Fatalf("count %d", count.Load())
	}
}

func TestMemcpyAsync(t *testing.T) {
	d := NewDevice(0)
	defer d.Close()
	s := d.NewStream("xfer")
	src := []float64{1, 2, 3}
	dst := make([]float64, 3)
	MemcpyAsync(s, dst, src)
	s.Synchronize()
	if dst[1] != 2 {
		t.Fatalf("dst %v", dst)
	}
}

func TestMemcpy2DAsyncStridedPack(t *testing.T) {
	// The §4.2 fused pack+D2H: copy a strided pencil out of a slab.
	d := NewDevice(0)
	defer d.Close()
	s := d.NewStream("xfer")
	nx, ny := 8, 4
	slab := make([]complex128, nx*ny)
	for i := range slab {
		slab[i] = complex(float64(i), 0)
	}
	// Extract columns 2..5 of each row (rowLen 4, src stride nx).
	pencil := make([]complex128, 4*ny)
	Memcpy2DAsync(s, pencil, 4, slab[2:], nx, 4, ny)
	s.Synchronize()
	for r := 0; r < ny; r++ {
		for j := 0; j < 4; j++ {
			want := complex(float64(r*nx+2+j), 0)
			if pencil[r*4+j] != want {
				t.Fatalf("row %d col %d: %v want %v", r, j, pencil[r*4+j], want)
			}
		}
	}
}

func TestZeroCopyGatherScatterRoundTrip(t *testing.T) {
	d := NewDevice(0)
	defer d.Close()
	s := d.NewStream("zc")
	src := []int{10, 20, 30, 40, 50}
	idx := []int{4, 2, 0}
	got := make([]int, 3)
	ZeroCopyGather(s, got, src, idx)
	s.Synchronize()
	if got[0] != 50 || got[1] != 30 || got[2] != 10 {
		t.Fatalf("gather %v", got)
	}
	back := make([]int, 5)
	ZeroCopyScatter(s, back, got, idx)
	s.Synchronize()
	if back[4] != 50 || back[2] != 30 || back[0] != 10 {
		t.Fatalf("scatter %v", back)
	}
}

// --- Cost model -------------------------------------------------------

func TestManyMemcpyMuchSlowerAtSmallChunks(t *testing.T) {
	// Fig 7: below ~100 KB chunks, many cudaMemcpyAsync calls are far
	// slower than the other two approaches.
	c := SummitCopyCost()
	const total = 216e6
	chunk := 8.8e3 // the 8.8 KB point called out in §4.2
	many := c.ManyMemcpyTime(total, chunk)
	zc := c.ZeroCopyTime(total, chunk, 160, true)
	m2d := c.Memcpy2DTime(total, chunk)
	if many < 10*zc || many < 10*m2d {
		t.Errorf("many-memcpy %g not ≫ zero-copy %g / memcpy2D %g", many, zc, m2d)
	}
}

func TestZeroCopyAndMemcpy2DComparable(t *testing.T) {
	// Fig 7's second conclusion: the two fast approaches give similar
	// timings across the sweep.
	c := SummitCopyCost()
	for _, p := range c.Fig7() {
		ratio := p.ZeroCopy / p.Memcpy2D
		if ratio < 0.3 || ratio > 3.5 {
			t.Errorf("chunk %g: zero-copy %g vs memcpy2D %g (ratio %.2f)",
				p.ChunkBytes, p.ZeroCopy, p.Memcpy2D, ratio)
		}
	}
}

func TestFinerGranularityIncreasesTime(t *testing.T) {
	// Fig 7's first conclusion: moving the same total in finer chunks
	// costs more, for every method.
	c := SummitCopyCost()
	pts := c.Fig7()
	for i := 1; i < len(pts); i++ {
		if pts[i].ManyMemcpy > pts[i-1].ManyMemcpy ||
			pts[i].ZeroCopy > pts[i-1].ZeroCopy ||
			pts[i].Memcpy2D > pts[i-1].Memcpy2D {
			t.Errorf("time not monotone in chunk size at %g bytes", pts[i].ChunkBytes)
		}
	}
}

func TestZeroCopySaturatesBy16Blocks(t *testing.T) {
	// Fig 8: close to maximum throughput with only ~16 of 160 blocks.
	c := SummitCopyCost()
	bw16 := c.ZeroCopyBandwidth(16, true)
	bwMax := c.ZeroCopyBandwidth(160, true)
	if bw16 < 0.85*bwMax {
		t.Errorf("16 blocks reaches only %.0f%% of peak", 100*bw16/bwMax)
	}
	// And with ample blocks it is comparable to the copy engine.
	if bwMax < 0.85*c.PeakBW {
		t.Errorf("zero-copy peak %.1f GB/s far below copy engine %.1f", bwMax/1e9, c.PeakBW/1e9)
	}
}

func TestZeroCopyBandwidthMonotoneInBlocks(t *testing.T) {
	c := SummitCopyCost()
	prev := 0.0
	for _, p := range c.Fig8() {
		if p.H2DBW < prev {
			t.Errorf("H2D bandwidth fell at %d blocks", p.Blocks)
		}
		prev = p.H2DBW
		if p.D2HBW > p.H2DBW {
			t.Errorf("D2H (write) should not exceed H2D (read) at %d blocks", p.Blocks)
		}
	}
}

func TestPaper18432ChunkSizeRegime(t *testing.T) {
	// §4.2: for the 18432³ problem the contiguous extent is 18 KB and
	// 165888 chunks must move; both fast methods stay in the tens of
	// milliseconds while many-memcpy exceeds a second.
	c := SummitCopyCost()
	total := 165888.0 * 18e3
	many := c.ManyMemcpyTime(total, 18e3)
	m2d := c.Memcpy2DTime(total, 18e3)
	if many < 1.0 {
		t.Errorf("many-memcpy %g s, expected > 1 s", many)
	}
	if m2d > 0.2 {
		t.Errorf("memcpy2D %g s, expected well under 0.2 s", m2d)
	}
}

func TestCostModelPanicsOnBadChunk(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SummitCopyCost().ManyMemcpyTime(100, 1000)
}

func TestFig7CoversPaperRange(t *testing.T) {
	pts := SummitCopyCost().Fig7()
	if len(pts) < 10 {
		t.Fatalf("sweep too short: %d points", len(pts))
	}
	if pts[0].ChunkBytes > 2.3e3 || pts[len(pts)-1].ChunkBytes < 14e6 {
		t.Errorf("sweep range [%g, %g] misses the paper's axis",
			pts[0].ChunkBytes, pts[len(pts)-1].ChunkBytes)
	}
	_ = math.Pi
}

func TestDeviceErrorIsStickyAndSurfacesAtSync(t *testing.T) {
	d := NewDevice(0)
	defer d.Close()
	s := d.NewStream("compute")
	var ranAfter atomic.Bool
	s.Launch("bad-kernel", func() { panic("illegal memory access") })
	s.Launch("subsequent", func() { ranAfter.Store(true) })
	defer func() {
		e := recover()
		if e == nil {
			t.Error("Synchronize did not surface the device error")
		}
		if ranAfter.Load() {
			t.Error("work after the failing kernel still executed")
		}
		if s.Err() == nil {
			t.Error("sticky error cleared")
		}
	}()
	s.Synchronize()
}

func TestDeviceErrorDoesNotHangEvents(t *testing.T) {
	// Events recorded after a failure must still complete so that
	// cross-stream waiters and the host never deadlock.
	d := NewDevice(0)
	defer d.Close()
	s := d.NewStream("compute")
	s.Launch("bad", func() { panic("boom") })
	ev := s.Record()
	done := make(chan struct{})
	go func() { ev.Synchronize(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("event after device error never completed")
	}
}

func TestHealthyStreamHasNoError(t *testing.T) {
	d := NewDevice(0)
	defer d.Close()
	s := d.NewStream("ok")
	s.Launch("fine", func() {})
	s.Synchronize()
	if s.Err() != nil {
		t.Errorf("unexpected error %v", s.Err())
	}
	if s.Name() != "ok" {
		t.Error("name")
	}
}
