package cuda

import (
	"fmt"
	"math"
)

// CopyCost models the time of host↔device strided copies on Summit,
// reproducing the comparison of §4.2 between (a) many small
// cudaMemcpyAsync calls, (b) one cudaMemcpy2DAsync, and (c) a custom
// zero-copy kernel (Figs 7 and 8).
type CopyCost struct {
	PeakBW         float64 // copy-engine bandwidth per GPU on pinned memory (B/s)
	APIOverhead    float64 // host-side cost of one cudaMemcpyAsync call (s)
	RowOverhead    float64 // per-row cost inside cudaMemcpy2DAsync (s)
	LaunchOverhead float64 // one kernel launch (s)
	ChunkOverhead  float64 // per-chunk cost inside the zero-copy kernel (s)
	ZCPeakH2D      float64 // zero-copy kernel peak, device reading host (B/s)
	ZCPeakD2H      float64 // zero-copy kernel peak, device writing host (B/s)
	ZCBlockHalf    float64 // thread blocks at half of peak (saturation shape)
}

// SummitCopyCost returns the model calibrated to the V100/NVLink
// numbers of §3.2 and the qualitative content of Figs 7 and 8.
func SummitCopyCost() CopyCost {
	return CopyCost{
		PeakBW:         45e9, // 2 NVLink bricks per GPU, 50 GB/s peak
		APIOverhead:    8e-6,
		RowOverhead:    50e-9,
		LaunchOverhead: 10e-6,
		ChunkOverhead:  200e-9,
		ZCPeakH2D:      43e9,
		ZCPeakD2H:      39e9,
		ZCBlockHalf:    2,
	}
}

// ManyMemcpyTime is the time to move total bytes as total/chunk
// separate cudaMemcpyAsync calls (the slow approach of Fig 7).
func (c CopyCost) ManyMemcpyTime(total, chunk float64) float64 {
	checkChunk(total, chunk)
	n := math.Ceil(total / chunk)
	return n*c.APIOverhead + total/c.PeakBW
}

// Memcpy2DTime is the time for one cudaMemcpy2DAsync moving total
// bytes in rows of chunk contiguous bytes.
func (c CopyCost) Memcpy2DTime(total, chunk float64) float64 {
	checkChunk(total, chunk)
	rows := math.Ceil(total / chunk)
	return c.APIOverhead + rows*c.RowOverhead + total/c.PeakBW
}

// ZeroCopyBandwidth is the Fig 8 curve: sustained bandwidth of the
// zero-copy kernel as a function of occupied thread blocks, for the
// host-to-device (read) direction when h2d is true.
func (c CopyCost) ZeroCopyBandwidth(blocks int, h2d bool) float64 {
	if blocks < 1 {
		panic(fmt.Sprintf("cuda: invalid block count %d", blocks))
	}
	peak := c.ZCPeakD2H
	if h2d {
		peak = c.ZCPeakH2D
	}
	b := float64(blocks)
	return peak * b / (b + c.ZCBlockHalf)
}

// ZeroCopyTime is the time for the zero-copy kernel to move total
// bytes in chunks of the given contiguous size using the given number
// of thread blocks.
func (c CopyCost) ZeroCopyTime(total, chunk float64, blocks int, h2d bool) float64 {
	checkChunk(total, chunk)
	n := math.Ceil(total / chunk)
	return c.LaunchOverhead + n*c.ChunkOverhead + total/c.ZeroCopyBandwidth(blocks, h2d)
}

func checkChunk(total, chunk float64) {
	if total <= 0 || chunk <= 0 || chunk > total {
		panic(fmt.Sprintf("cuda: invalid copy total=%g chunk=%g", total, chunk))
	}
}

// Fig7Point is one measurement of the Fig 7 sweep.
type Fig7Point struct {
	ChunkBytes float64
	ManyMemcpy float64 // seconds
	ZeroCopy   float64
	Memcpy2D   float64
}

// Fig7 regenerates the strided-copy comparison of Fig 7: a fixed
// 216 MB pencil moved with varying contiguous chunk sizes. The
// zero-copy kernel uses ample blocks, as in the paper's measurement.
func (c CopyCost) Fig7() []Fig7Point {
	const total = 216e6
	var out []Fig7Point
	// Chunk sizes from 2.2 KB to 27 MB, ×2 sweep (Fig 7's x axis).
	for chunk := 2200.0; chunk <= 28e6; chunk *= 2 {
		out = append(out, Fig7Point{
			ChunkBytes: chunk,
			ManyMemcpy: c.ManyMemcpyTime(total, chunk),
			ZeroCopy:   c.ZeroCopyTime(total, chunk, 160, true),
			Memcpy2D:   c.Memcpy2DTime(total, chunk),
		})
	}
	return out
}

// Fig8Point is one measurement of the Fig 8 sweep.
type Fig8Point struct {
	Blocks      int
	H2DBW       float64 // zero-copy kernel, device reads host
	D2HBW       float64 // zero-copy kernel, device writes host
	Memcpy2DH2D float64 // copy-engine reference lines
	Memcpy2DD2H float64
}

// Fig8 regenerates the zero-copy bandwidth-vs-blocks study of Fig 8.
func (c CopyCost) Fig8() []Fig8Point {
	var out []Fig8Point
	for _, blocks := range []int{2, 4, 8, 16, 32, 64, 128, 160} {
		out = append(out, Fig8Point{
			Blocks:      blocks,
			H2DBW:       c.ZeroCopyBandwidth(blocks, true),
			D2HBW:       c.ZeroCopyBandwidth(blocks, false),
			Memcpy2DH2D: c.PeakBW,
			Memcpy2DD2H: c.PeakBW * 0.95,
		})
	}
	return out
}
