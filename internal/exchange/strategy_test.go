package exchange

import "testing"

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []Strategy{Auto, Staged, Fused, ChunkedFused} {
		got, err := Parse(s.String())
		if err != nil || got != s {
			t.Fatalf("Parse(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("Parse(bogus) accepted")
	}
	if s, err := Parse(""); err != nil || s != Auto {
		t.Fatalf("Parse(\"\") = %v, %v; want Auto", s, err)
	}
}

func TestCodes(t *testing.T) {
	if Staged.Code() != 0 || Fused.Code() != 1 || ChunkedFused.Code() != 2 {
		t.Fatalf("gauge codes moved: %v %v %v", Staged.Code(), Fused.Code(), ChunkedFused.Code())
	}
}

// Resolve must minimize the max-over-ranks cost, so a strategy that is
// fastest on one rank but pathological on another loses to a uniform
// one — and a table that includes Staged can never resolve to a
// strategy slower than Staged.
func TestResolveMaxOverRanks(t *testing.T) {
	cands := []Strategy{Staged, Fused, ChunkedFused}
	perRank := [][]float64{
		{3.0, 1.0, 2.0}, // rank 0: fused fastest
		{3.0, 9.0, 2.5}, // rank 1: fused pathological
	}
	if got := Resolve(cands, perRank); got != ChunkedFused {
		t.Fatalf("Resolve = %v, want ChunkedFused (min of max)", got)
	}
}

func TestResolveNeverRegressesStaged(t *testing.T) {
	cands := []Strategy{Staged, Fused, ChunkedFused}
	perRank := [][]float64{{1.0, 5.0, 7.0}, {1.2, 4.0, 9.0}}
	if got := Resolve(cands, perRank); got != Staged {
		t.Fatalf("Resolve = %v, want Staged when it measured fastest", got)
	}
}

func TestResolveTiesAndInvalid(t *testing.T) {
	cands := []Strategy{Staged, Fused}
	// Exact tie breaks toward the earlier candidate on every rank.
	if got := Resolve(cands, [][]float64{{2, 2}}); got != Staged {
		t.Fatalf("tie broke to %v, want Staged", got)
	}
	// A rank that failed to measure (non-positive) disqualifies the
	// candidate everywhere.
	if got := Resolve(cands, [][]float64{{5, 0}, {5, 1}}); got != Staged {
		t.Fatalf("invalid measurement resolved to %v, want Staged", got)
	}
}
