// Package exchange defines the transpose-exchange strategy space of
// the fused engine and the plan-time autotuner that picks between its
// points. The strategies are the software analogue of the paper's §4
// data-movement variants:
//
//   - Staged: pack into per-destination blocks, exchange blocks
//     through the persistent all-to-all, unpack into the destination
//     layout — three full memory passes (the cudaMemcpy2DAsync
//     staging path).
//   - Fused: one parallel pass of strided gathers reading directly
//     from peer slab memory into the local destination layout — the
//     zero-copy kernels of §4 whose SM threads read pinned host
//     memory in place, with pack, wire copy and unpack deleted.
//   - ChunkedFused: the fused gather split into P pairwise-exchange
//     rounds (rank r reads peer (r+k)%P in round k), so at any moment
//     each source slab is being read by one rank's worker team only —
//     the many-memcpyAsync variant, trading a little dispatch for
//     less contention on the source slab.
//
// The paper's §5 configuration A/B/C study shows the winning strategy
// depends on (N, P, workers) and must be chosen, not hard-coded: Auto
// asks the engine to microbenchmark the candidates on the real plan
// geometry at construction and pin the winner for the plan's lifetime.
package exchange

import "fmt"

// Strategy selects how a plan executes its transpose-exchange.
type Strategy int

const (
	// Auto microbenchmarks the concrete strategies at plan
	// construction and pins the winner.
	Auto Strategy = iota
	// Staged is the pack → all-to-all → unpack three-pass path.
	Staged
	// Fused is the single-pass zero-copy gather from peer slabs.
	Fused
	// ChunkedFused is the fused gather in pairwise-exchange rounds.
	ChunkedFused
	// AT is the asynchrony-tolerant fused gather: publication is
	// epoch-tagged and double-buffered, and a rank whose peers lag
	// proceeds on their latest published slabs once they are within
	// the configured staleness bound (mpi.ExchangePlan.DoBounded).
	// It trades bounded accuracy (the scheme corrects for the
	// staleness) for immunity to stragglers, so it is opted into
	// explicitly and never autotuned against the exact strategies.
	AT
)

// Concrete lists the strategies an autotuner chooses between, in
// gauge-code order (see Code). AT is excluded: it changes the answer
// (bounded staleness), not just the speed, so it is never picked by
// timing alone.
var Concrete = []Strategy{Staged, Fused, ChunkedFused}

// String returns the flag-level name of the strategy.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Staged:
		return "staged"
	case Fused:
		return "fused"
	case ChunkedFused:
		return "chunked"
	case AT:
		return "at"
	}
	return fmt.Sprintf("exchange.Strategy(%d)", int(s))
}

// Code is the numeric value published in the exchange.strategy gauge:
// 0 staged, 1 fused, 2 chunked-fused, 3 asynchrony-tolerant. Auto has
// no code — a plan always pins a concrete strategy before publishing.
func (s Strategy) Code() float64 {
	switch s {
	case Fused:
		return 1
	case ChunkedFused:
		return 2
	case AT:
		return 3
	default:
		return 0
	}
}

// Parse maps a flag value to a Strategy.
func Parse(s string) (Strategy, error) {
	switch s {
	case "auto", "":
		return Auto, nil
	case "staged":
		return Staged, nil
	case "fused":
		return Fused, nil
	case "chunked", "chunked-fused", "chunkedfused":
		return ChunkedFused, nil
	case "at", "asynchrony-tolerant":
		return AT, nil
	}
	return Auto, fmt.Errorf("exchange: unknown strategy %q (want auto, staged, fused, chunked or at)", s)
}

// Pair names one strategy per transpose direction: YZ for the
// Fourier→physical transpose and ZY for physical→Fourier. The two
// directions move the same bytes through mirrored access patterns, so
// an autotuner can (and does) pick them independently.
type Pair struct {
	YZ Strategy
	ZY Strategy
}

// Both returns the pair that uses s in both directions.
func Both(s Strategy) Pair { return Pair{YZ: s, ZY: s} }

// String renders the pair as "yz/zy" ("fused/staged"), collapsing to
// the single name when both directions agree.
func (p Pair) String() string {
	if p.YZ == p.ZY {
		return p.YZ.String()
	}
	return p.YZ.String() + "/" + p.ZY.String()
}

// ParsePair maps a flag value to a Pair: either one strategy name for
// both directions ("fused") or a "yz/zy" pair ("fused/staged").
func ParsePair(s string) (Pair, error) {
	yz, zy, ok := stringsCut(s, '/')
	if !ok {
		st, err := Parse(s)
		return Both(st), err
	}
	sy, err := Parse(yz)
	if err != nil {
		return Pair{}, err
	}
	sz, err := Parse(zy)
	if err != nil {
		return Pair{}, err
	}
	return Pair{YZ: sy, ZY: sz}, nil
}

// stringsCut avoids importing strings for one call site.
func stringsCut(s string, sep byte) (before, after string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// Resolve picks the winner from trial times gathered across ranks.
// perRank[r][i] is rank r's best wall time (seconds) for candidate
// cands[i]. A collective exchange completes when its slowest rank
// does, so each candidate's cost is its max over ranks, and the
// winner is the candidate with the smallest cost; ties break toward
// the earlier candidate, so every rank resolves the same winner from
// the same gathered table. Non-positive times (a rank that could not
// measure) disqualify a candidate.
//
// The argmin over a table that includes Staged is what makes the
// autotuner safe by construction: it can never pin a strategy that
// measured slower than the staged baseline on the benchmarked plan.
func Resolve(cands []Strategy, perRank [][]float64) Strategy {
	if len(cands) == 0 {
		panic("exchange: Resolve with no candidates")
	}
	i, _ := ResolveIndex(len(cands), perRank)
	return cands[i]
}

// ResolveIndex is the candidate-agnostic core of Resolve: given each
// rank's best wall times for ncands candidates of any kind (exchange
// strategies, whole-step tuning points, …), it returns the index of
// the candidate whose max-over-ranks cost is smallest, together with
// that cost, applying the same tie-break-to-earlier and non-positive-
// time disqualification rules. Every rank resolves the same index from
// the same gathered table. The returned cost is -1 when every
// candidate was disqualified (the winner then defaults to index 0).
func ResolveIndex(ncands int, perRank [][]float64) (int, float64) {
	if ncands == 0 {
		panic("exchange: ResolveIndex with no candidates")
	}
	best, bestCost := 0, -1.0
	for i := 0; i < ncands; i++ {
		cost, ok := 0.0, true
		for _, times := range perRank {
			t := times[i]
			if t <= 0 {
				ok = false
				break
			}
			if t > cost {
				cost = t
			}
		}
		if !ok {
			continue
		}
		if bestCost < 0 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best, bestCost
}
