package transpose

import (
	"testing"
)

// encode gives each global (x,y,z) site a unique value.
func encode(ix, iy, iz int) complex128 {
	return complex(float64(ix*1000000+iy*1000+iz), float64(ix+iy+iz))
}

// exchange emulates MPI_ALLTOALL across p local "ranks": send buffers
// are p equal blocks; recv[r] gathers block r from every rank.
func exchange(send [][]complex128, p, bs int) [][]complex128 {
	recv := make([][]complex128, p)
	for r := 0; r < p; r++ {
		recv[r] = make([]complex128, p*bs)
		for s := 0; s < p; s++ {
			copy(recv[r][s*bs:(s+1)*bs], send[s][r*bs:(r+1)*bs])
		}
	}
	return recv
}

func TestSlabTransposeGlobalPlacement(t *testing.T) {
	nxh, ny, nz, p := 3, 8, 4, 2
	mz, my := nz/p, ny/p
	bs := mz * my * nxh

	// Build each rank's Fourier-side slab [mz][ny][nxh].
	send := make([][]complex128, p)
	for r := 0; r < p; r++ {
		slab := make([]complex128, mz*ny*nxh)
		for iz := 0; iz < mz; iz++ {
			for iy := 0; iy < ny; iy++ {
				for ix := 0; ix < nxh; ix++ {
					slab[(iz*ny+iy)*nxh+ix] = encode(ix, iy, r*mz+iz)
				}
			}
		}
		packed := make([]complex128, len(slab))
		PackYZ(packed, slab, nxh, ny, mz, p)
		send[r] = packed
	}
	recv := exchange(send, p, bs)
	for r := 0; r < p; r++ {
		dst := make([]complex128, my*nz*nxh)
		UnpackYZ(dst, recv[r], nxh, nz, my, p)
		for iy := 0; iy < my; iy++ {
			for iz := 0; iz < nz; iz++ {
				for ix := 0; ix < nxh; ix++ {
					want := encode(ix, r*my+iy, iz)
					got := dst[(iy*nz+iz)*nxh+ix]
					if got != want {
						t.Fatalf("rank %d (x=%d y=%d z=%d): got %v want %v", r, ix, r*my+iy, iz, got, want)
					}
				}
			}
		}
	}
}

func TestSlabTransposeRoundTrip(t *testing.T) {
	nxh, ny, nz, p := 5, 12, 6, 3
	mz, my := nz/p, ny/p
	bs := mz * my * nxh

	orig := make([][]complex128, p)
	send := make([][]complex128, p)
	for r := 0; r < p; r++ {
		slab := make([]complex128, mz*ny*nxh)
		for i := range slab {
			slab[i] = complex(float64(r*100000+i), float64(i))
		}
		orig[r] = slab
		packed := make([]complex128, len(slab))
		PackYZ(packed, slab, nxh, ny, mz, p)
		send[r] = packed
	}
	recv := exchange(send, p, bs)

	// Reverse: pack z→y, exchange, unpack, compare to original.
	back := make([][]complex128, p)
	for r := 0; r < p; r++ {
		phys := make([]complex128, my*nz*nxh)
		UnpackYZ(phys, recv[r], nxh, nz, my, p)
		packed := make([]complex128, len(phys))
		PackZY(packed, phys, nxh, nz, my, p)
		back[r] = packed
	}
	recv2 := exchange(back, p, bs)
	for r := 0; r < p; r++ {
		dst := make([]complex128, mz*ny*nxh)
		UnpackZY(dst, recv2[r], nxh, ny, mz, p)
		for i := range dst {
			if dst[i] != orig[r][i] {
				t.Fatalf("rank %d element %d not restored: %v vs %v", r, i, dst[i], orig[r][i])
			}
		}
	}
}

func TestPencilBatchedPackEqualsFullPack(t *testing.T) {
	// Packing np pencils one at a time and concatenating the pieces per
	// destination must move exactly the same data as PackYZ of the full
	// slab (configuration B vs C of the paper carry identical bytes).
	nxh, ny, mz, p, np := 2, 12, 3, 3, 4
	my := ny / p
	src := make([]complex128, mz*ny*nxh)
	for i := range src {
		src[i] = complex(float64(i), -float64(i))
	}
	full := make([]complex128, len(src))
	PackYZ(full, src, nxh, ny, mz, p)

	nyp := ny / np
	// Gather per-destination data from the pencil packs.
	var perDst [][]complex128 = make([][]complex128, p)
	for ip := 0; ip < np; ip++ {
		buf := make([]complex128, mz*nyp*nxh)
		counts := PackYZPencil(buf, src, nxh, ny, mz, p, ip*nyp, (ip+1)*nyp)
		off := 0
		for d := 0; d < p; d++ {
			perDst[d] = append(perDst[d], buf[off:off+counts[d]]...)
			off += counts[d]
		}
	}
	// Config B (per-pencil messages) delivers the same data per
	// destination as config C (whole-slab messages), in a permuted
	// order the receiver's unpack accounts for. Compare as sets.
	bs := mz * my * nxh
	for d := 0; d < p; d++ {
		if len(perDst[d]) != bs {
			t.Fatalf("dest %d: pencil packs total %d want %d", d, len(perDst[d]), bs)
		}
		want := map[complex128]int{}
		got := map[complex128]int{}
		for i := 0; i < bs; i++ {
			want[full[d*bs+i]]++
			got[perDst[d][i]]++
		}
		for v, n := range want {
			if got[v] != n {
				t.Fatalf("dest %d: value %v count %d want %d", d, v, got[v], n)
			}
		}
	}
}

func TestPencilBatchedUnpackPlacement(t *testing.T) {
	nxh, ny, nz, p, np := 2, 8, 4, 2, 4
	my, mz := ny/p, nz/p
	nyp := ny / np
	// Build global field, pack pencil-by-pencil on each source rank,
	// exchange per pencil, unpack per pencil; verify final placement.
	for r := 0; r < p; r++ {
		dst := make([]complex128, my*nz*nxh)
		for ip := 0; ip < np; ip++ {
			yLo, yHi := ip*nyp, (ip+1)*nyp
			// Only sources contribute; each source packs its pencil.
			recvBuf := make([]complex128, 0, p*mz*nyp*nxh)
			for s := 0; s < p; s++ {
				slab := make([]complex128, mz*ny*nxh)
				for iz := 0; iz < mz; iz++ {
					for iy := 0; iy < ny; iy++ {
						for ix := 0; ix < nxh; ix++ {
							slab[(iz*ny+iy)*nxh+ix] = encode(ix, iy, s*mz+iz)
						}
					}
				}
				buf := make([]complex128, mz*nyp*nxh)
				counts := PackYZPencil(buf, slab, nxh, ny, mz, p, yLo, yHi)
				// Extract the piece destined for rank r.
				off := 0
				for d := 0; d < p; d++ {
					if d == r {
						recvBuf = append(recvBuf, buf[off:off+counts[d]]...)
					}
					off += counts[d]
				}
			}
			UnpackYZPencil(dst, recvBuf, nxh, nz, my, p, r*my, yLo, yHi)
		}
		for iy := 0; iy < my; iy++ {
			for iz := 0; iz < nz; iz++ {
				for ix := 0; ix < nxh; ix++ {
					want := encode(ix, r*my+iy, iz)
					if got := dst[(iy*nz+iz)*nxh+ix]; got != want {
						t.Fatalf("rank %d y=%d z=%d x=%d: got %v want %v", r, r*my+iy, iz, ix, got, want)
					}
				}
			}
		}
	}
}

func TestRowTransposeRoundTrip(t *testing.T) {
	nx, ny, mz, pr := 8, 6, 2, 2
	my, mx := ny/pr, nx/pr
	bs := mz * my * mx

	orig := make([][]complex128, pr)
	send := make([][]complex128, pr)
	for r := 0; r < pr; r++ {
		a := make([]complex128, mz*my*nx)
		for i := range a {
			a[i] = complex(float64(r*1000+i), 0)
		}
		orig[r] = a
		packed := make([]complex128, len(a))
		PackRowAB(packed, a, nx, my, mz, pr)
		send[r] = packed
	}
	recv := exchange(send, pr, bs)
	backSend := make([][]complex128, pr)
	for r := 0; r < pr; r++ {
		b := make([]complex128, mz*mx*ny)
		UnpackRowAB(b, recv[r], ny, mx, mz, pr)
		packed := make([]complex128, len(b))
		PackRowBA(packed, b, ny, mx, mz, pr)
		backSend[r] = packed
	}
	recv2 := exchange(backSend, pr, bs)
	for r := 0; r < pr; r++ {
		a := make([]complex128, mz*my*nx)
		UnpackRowBA(a, recv2[r], nx, my, mz, pr)
		for i := range a {
			if a[i] != orig[r][i] {
				t.Fatalf("rank %d element %d not restored", r, i)
			}
		}
	}
}

func TestRowTransposeGlobalPlacement(t *testing.T) {
	nx, ny, mz, pr := 6, 4, 1, 2
	my, mx := ny/pr, nx/pr
	bs := mz * my * mx
	send := make([][]complex128, pr)
	for r := 0; r < pr; r++ {
		a := make([]complex128, mz*my*nx)
		for iz := 0; iz < mz; iz++ {
			for iy := 0; iy < my; iy++ {
				for ix := 0; ix < nx; ix++ {
					a[(iz*my+iy)*nx+ix] = encode(ix, r*my+iy, iz)
				}
			}
		}
		packed := make([]complex128, len(a))
		PackRowAB(packed, a, nx, my, mz, pr)
		send[r] = packed
	}
	recv := exchange(send, pr, bs)
	for r := 0; r < pr; r++ {
		b := make([]complex128, mz*mx*ny)
		UnpackRowAB(b, recv[r], ny, mx, mz, pr)
		for iz := 0; iz < mz; iz++ {
			for ix := 0; ix < mx; ix++ {
				for iy := 0; iy < ny; iy++ {
					want := encode(r*mx+ix, iy, iz)
					if got := b[(iz*mx+ix)*ny+iy]; got != want {
						t.Fatalf("rank %d x=%d y=%d: got %v want %v", r, r*mx+ix, iy, got, want)
					}
				}
			}
		}
	}
}

func TestColTransposeRoundTrip(t *testing.T) {
	ny, nz, mx, pc := 6, 4, 3, 2
	my2, mz := ny/pc, nz/pc
	bs := mz * mx * my2

	orig := make([][]complex128, pc)
	send := make([][]complex128, pc)
	for r := 0; r < pc; r++ {
		b := make([]complex128, mz*mx*ny)
		for i := range b {
			b[i] = complex(float64(r*777+i), float64(i%7))
		}
		orig[r] = b
		packed := make([]complex128, len(b))
		PackColBC(packed, b, ny, mx, mz, pc)
		send[r] = packed
	}
	recv := exchange(send, pc, bs)
	backSend := make([][]complex128, pc)
	for r := 0; r < pc; r++ {
		cArr := make([]complex128, my2*mx*nz)
		UnpackColBC(cArr, recv[r], nz, mx, my2, pc)
		packed := make([]complex128, len(cArr))
		PackColCB(packed, cArr, nz, mx, my2, pc)
		backSend[r] = packed
	}
	recv2 := exchange(backSend, pc, bs)
	for r := 0; r < pc; r++ {
		b := make([]complex128, mz*mx*ny)
		UnpackColCB(b, recv2[r], ny, mx, mz, pc)
		for i := range b {
			if b[i] != orig[r][i] {
				t.Fatalf("rank %d element %d not restored", r, i)
			}
		}
	}
}

func TestColTransposeGlobalPlacement(t *testing.T) {
	ny, nz, mx, pc := 4, 6, 2, 2
	my2, mz := ny/pc, nz/pc
	bs := mz * mx * my2
	send := make([][]complex128, pc)
	for r := 0; r < pc; r++ {
		// Layout B on rank r: [mz][mx][ny], z range [r·mz,(r+1)·mz).
		b := make([]complex128, mz*mx*ny)
		for iz := 0; iz < mz; iz++ {
			for ix := 0; ix < mx; ix++ {
				for iy := 0; iy < ny; iy++ {
					b[(iz*mx+ix)*ny+iy] = encode(ix, iy, r*mz+iz)
				}
			}
		}
		packed := make([]complex128, len(b))
		PackColBC(packed, b, ny, mx, mz, pc)
		send[r] = packed
	}
	recv := exchange(send, pc, bs)
	for r := 0; r < pc; r++ {
		cArr := make([]complex128, my2*mx*nz)
		UnpackColBC(cArr, recv[r], nz, mx, my2, pc)
		for iy := 0; iy < my2; iy++ {
			for ix := 0; ix < mx; ix++ {
				for iz := 0; iz < nz; iz++ {
					want := encode(ix, r*my2+iy, iz)
					if got := cArr[(iy*mx+ix)*nz+iz]; got != want {
						t.Fatalf("rank %d y=%d z=%d: got %v want %v", r, r*my2+iy, iz, got, want)
					}
				}
			}
		}
	}
}

func TestCopyStrided(t *testing.T) {
	src := make([]float64, 20)
	for i := range src {
		src[i] = float64(i)
	}
	dst := make([]float64, 20)
	// Copy 3 rows of 4 elements: src stride 5, dst stride 6.
	CopyStrided(dst, 6, src, 5, 4, 3)
	for r := 0; r < 3; r++ {
		for j := 0; j < 4; j++ {
			if dst[r*6+j] != float64(r*5+j) {
				t.Errorf("row %d col %d: got %g", r, j, dst[r*6+j])
			}
		}
	}
}

func TestPackPanicsOnShortBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PackYZ(make([]complex128, 3), make([]complex128, 100), 2, 10, 5, 2)
}
