package transpose

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for random geometry, the slab pack→exchange→unpack chain
// followed by its reverse restores every rank's slab exactly.
func TestSlabTransposeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(5)
		my := 1 + rng.Intn(4)
		mz := 1 + rng.Intn(4)
		ny := my * p
		nz := mz * p
		nxh := 1 + rng.Intn(6)
		bs := mz * my * nxh

		orig := make([][]complex128, p)
		send := make([][]complex128, p)
		for r := 0; r < p; r++ {
			slab := make([]complex128, mz*ny*nxh)
			for i := range slab {
				slab[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			orig[r] = slab
			packed := make([]complex128, len(slab))
			PackYZ(packed, slab, nxh, ny, mz, p)
			send[r] = packed
		}
		recv := exchange(send, p, bs)
		back := make([][]complex128, p)
		for r := 0; r < p; r++ {
			phys := make([]complex128, my*nz*nxh)
			UnpackYZ(phys, recv[r], nxh, nz, my, p)
			packed := make([]complex128, len(phys))
			PackZY(packed, phys, nxh, nz, my, p)
			back[r] = packed
		}
		recv2 := exchange(back, p, bs)
		for r := 0; r < p; r++ {
			dst := make([]complex128, mz*ny*nxh)
			UnpackZY(dst, recv2[r], nxh, ny, mz, p)
			for i := range dst {
				if dst[i] != orig[r][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every element of the packed buffer appears exactly once
// (pack is a permutation, never duplicating or dropping data).
func TestPackIsPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(4)
		my := 1 + rng.Intn(3)
		mz := 1 + rng.Intn(3)
		ny := my * p
		nxh := 1 + rng.Intn(5)
		src := make([]complex128, mz*ny*nxh)
		for i := range src {
			src[i] = complex(float64(i)+1, 0) // unique nonzero values
		}
		dst := make([]complex128, len(src))
		PackYZ(dst, src, nxh, ny, mz, p)
		seen := map[complex128]int{}
		for _, v := range dst {
			seen[v]++
		}
		if len(seen) != len(src) {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the row/column pencil transposes are mutual inverses for
// random 2D-decomposition geometry.
func TestPencilTransposeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pr := 1 + rng.Intn(4)
		mx := 1 + rng.Intn(3)
		my := mx // row transpose requires nx/pr == mx with nx = mx·pr and my = ny/pr
		nx := mx * pr
		ny := my * pr
		mz := 1 + rng.Intn(3)
		bs := mz * my * mx

		orig := make([][]complex128, pr)
		send := make([][]complex128, pr)
		for r := 0; r < pr; r++ {
			a := make([]complex128, mz*my*nx)
			for i := range a {
				a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			orig[r] = a
			packed := make([]complex128, len(a))
			PackRowAB(packed, a, nx, my, mz, pr)
			send[r] = packed
		}
		recv := exchange(send, pr, bs)
		back := make([][]complex128, pr)
		for r := 0; r < pr; r++ {
			b := make([]complex128, mz*mx*ny)
			UnpackRowAB(b, recv[r], ny, mx, mz, pr)
			packed := make([]complex128, len(b))
			PackRowBA(packed, b, ny, mx, mz, pr)
			back[r] = packed
		}
		recv2 := exchange(back, pr, bs)
		for r := 0; r < pr; r++ {
			a := make([]complex128, mz*my*nx)
			UnpackRowBA(a, recv2[r], nx, my, mz, pr)
			for i := range a {
				if a[i] != orig[r][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
