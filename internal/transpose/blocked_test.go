package transpose

import (
	"fmt"
	"testing"
)

// The cache-blocked gathers reorder the traversal only: every tile
// depth — degenerate (1), the pinned default, non-dividing (3), and
// larger than the plane count — must be bitwise-identical to the plain
// kernels, per peer and over ragged row partitions.
func TestGatherBlockedMatchesPlain(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		nxh, ny, mz := 5, 7*p, 6
		l := NewSlabLayout(nxh, ny, mz, p)
		srcs := buildFourierSlabs(&l)
		for me := 0; me < p; me++ {
			want := make([]complex128, l.Total)
			GatherYZRange(&l, want, srcs, me, 0, l.My)
			for _, tile := range []int{1, 3, DefaultGatherTile, mz, mz + 5, 0} {
				got := make([]complex128, l.Total)
				GatherYZRangeBlocked(&l, got, srcs, me, 0, l.My, tile)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("P=%d me=%d tile=%d: blocked YZ differs at %d: %v vs %v",
							p, me, tile, i, got[i], want[i])
					}
				}
				// Ragged per-peer row partition, pairwise-exchange order —
				// the chunked-fused call pattern.
				chunked := make([]complex128, l.Total)
				for r := 0; r < p; r++ {
					s := (me + r) % p
					for _, cut := range [][2]int{{0, 2}, {2, l.My}} {
						if cut[0] < cut[1] {
							GatherYZPeerBlocked(&l, chunked, srcs[s], me, s, cut[0], cut[1], tile)
						}
					}
				}
				for i := range want {
					if chunked[i] != want[i] {
						t.Fatalf("P=%d me=%d tile=%d: chunked blocked YZ differs at %d", p, me, tile, i)
					}
				}
			}
		}
	}
}

func TestGatherZYBlockedMatchesPlain(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		nxh, ny, mz := 4, 3*p, 5
		l := NewSlabLayout(nxh, ny, mz, p)
		srcs := make([][]complex128, p)
		for s := range srcs {
			srcs[s] = make([]complex128, l.Total)
			for i := range srcs[s] {
				srcs[s][i] = complex(float64(s*l.Total+i), -float64(s))
			}
		}
		for me := 0; me < p; me++ {
			want := make([]complex128, l.Total)
			GatherZYRange(&l, want, srcs, me, 0, l.Mz)
			for _, tile := range []int{1, 3, DefaultGatherTile, l.My, l.My + 2, 0} {
				got := make([]complex128, l.Total)
				GatherZYRangeBlocked(&l, got, srcs, me, 0, l.Mz, tile)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("P=%d me=%d tile=%d: blocked ZY differs at %d: %v vs %v",
							p, me, tile, i, got[i], want[i])
					}
				}
				chunked := make([]complex128, l.Total)
				for r := 0; r < p; r++ {
					s := (me + r) % p
					for _, cut := range [][2]int{{0, 1}, {1, l.Mz}} {
						if cut[0] < cut[1] {
							GatherZYPeerBlocked(&l, chunked, srcs[s], me, s, cut[0], cut[1], tile)
						}
					}
				}
				for i := range want {
					if chunked[i] != want[i] {
						t.Fatalf("P=%d me=%d tile=%d: chunked blocked ZY differs at %d", p, me, tile, i)
					}
				}
			}
		}
	}
}

// The blocked gathers also serve the float32 wire pipeline through the
// same generic instantiations; complex64 must route identically.
func TestGatherBlockedComplex64(t *testing.T) {
	const p = 4
	nxh, ny, mz := 3, 8, 4
	l := NewSlabLayout(nxh, ny, mz, p)
	srcs := make([][]complex64, p)
	for s := range srcs {
		srcs[s] = make([]complex64, l.Total)
		for i := range srcs[s] {
			srcs[s][i] = complex(float32(s*l.Total+i), float32(s))
		}
	}
	for me := 0; me < p; me++ {
		want := make([]complex64, l.Total)
		GatherYZRange(&l, want, srcs, me, 0, l.My)
		got := make([]complex64, l.Total)
		GatherYZRangeBlocked(&l, got, srcs, me, 0, l.My, DefaultGatherTile)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("me=%d: complex64 blocked YZ differs at %d", me, i)
			}
		}
	}
}

// NarrowStrided/WidenStrided are the shared precision kernels of the
// float32 wire pipelines: narrowing then widening a strided window
// must reproduce every float64 value that complex64 can represent
// round-trip, and leave the gaps between rows untouched.
func TestNarrowWidenStrided(t *testing.T) {
	const rowLen, nrows, dstStride, srcStride = 6, 5, 9, 8
	src := make([]complex128, srcStride*nrows)
	for i := range src {
		src[i] = complex(float64(i)+0.5, -float64(i)) // exact in float32
	}
	narrow := make([]complex64, dstStride*nrows)
	NarrowStrided(narrow, dstStride, src, srcStride, rowLen, nrows)
	wide := make([]complex128, srcStride*nrows)
	WidenStrided(wide, srcStride, narrow, dstStride, rowLen, nrows)
	for r := 0; r < nrows; r++ {
		for i := 0; i < rowLen; i++ {
			if wide[r*srcStride+i] != src[r*srcStride+i] {
				t.Fatalf("row %d elem %d: round-trip %v != %v", r, i, wide[r*srcStride+i], src[r*srcStride+i])
			}
		}
		for i := rowLen; i < srcStride; i++ {
			if wide[r*srcStride+i] != 0 {
				t.Fatalf("row %d: gap element %d written", r, i)
			}
		}
		for i := rowLen; i < dstStride && r < nrows-1; i++ {
			if narrow[r*dstStride+i] != 0 {
				t.Fatalf("row %d: narrow gap element %d written", r, i)
			}
		}
	}
}

func BenchmarkGatherYZ(b *testing.B) {
	const n, p = 128, 4
	nxh := n/2 + 1
	l := NewSlabLayout(nxh, n, n/p, p)
	srcs := make([][]complex128, p)
	for s := range srcs {
		srcs[s] = make([]complex128, l.Total)
	}
	dst := make([]complex128, l.Total)
	for _, bc := range []struct {
		name string
		tile int
	}{
		{"plain", 0},
		{fmt.Sprintf("blocked_t%d", DefaultGatherTile), DefaultGatherTile},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.SetBytes(int64(16 * l.Total))
			for i := 0; i < b.N; i++ {
				if bc.tile == 0 {
					GatherYZRange(&l, dst, srcs, 0, 0, l.My)
				} else {
					GatherYZRangeBlocked(&l, dst, srcs, 0, 0, l.My, bc.tile)
				}
			}
		})
	}
}
