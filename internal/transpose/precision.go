package transpose

// Strided precision converters shared by both engines' single-precision
// wire paths: the paper's production code keeps 4-byte words on every
// wire (Table 1's memory model, Table 2's message sizes), while our
// numerics compute in float64 for verifiable accuracy. NarrowStrided is
// the pack-side convert (complex128 → complex64, ~1e-7 relative
// rounding per transform) and WidenStrided the unpack-side restore;
// between them a slab crosses the exchange at half the bytes. Both are
// pure strided copy loops over row windows, so a worker team can split
// the row range without write conflicts.

// NarrowStrided converts nrows rows of rowLen elements from src
// (row stride srcStride) into dst (row stride dstStride).
//
//psdns:hotpath
func NarrowStrided(dst []complex64, dstStride int, src []complex128, srcStride, rowLen, nrows int) {
	for r := 0; r < nrows; r++ {
		d := dst[r*dstStride : r*dstStride+rowLen]
		sc := src[r*srcStride : r*srcStride+rowLen]
		for i, v := range sc {
			d[i] = complex64(v)
		}
	}
}

// WidenStrided converts nrows rows of rowLen elements from src
// (row stride srcStride) into dst (row stride dstStride).
//
//psdns:hotpath
func WidenStrided(dst []complex128, dstStride int, src []complex64, srcStride, rowLen, nrows int) {
	for r := 0; r < nrows; r++ {
		d := dst[r*dstStride : r*dstStride+rowLen]
		sc := src[r*srcStride : r*srcStride+rowLen]
		for i, v := range sc {
			d[i] = complex128(v)
		}
	}
}
