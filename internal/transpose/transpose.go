// Package transpose implements the pack and unpack kernels that
// surround every MPI all-to-all in the DNS: the slab y↔z transposes of
// the paper's 1D-decomposed GPU code (Fig 2/Fig 6) and the row/column
// transposes of the 2D pencil-decomposed CPU baseline. Pack layouts
// are chosen so each destination receives one contiguous block, the
// property the paper exploits by fusing packing into a single strided
// device-to-host copy.
package transpose

import "fmt"

// CopyStrided copies nrows rows of rowLen contiguous elements from src
// to dst, advancing by the given strides between rows — the software
// analogue of cudaMemcpy2D that both host packing and the simulated
// device copies share.
//
// Fully-contiguous transfers (both strides equal to the row length,
// cudaMemcpy2D degenerating to cudaMemcpy) collapse into a single
// copy, and the strided loop carries running offsets instead of
// recomputing r·stride slice bounds per row; BenchmarkCopyStrided
// pins both shapes.
//
//psdns:hotpath
func CopyStrided[T any](dst []T, dstStride int, src []T, srcStride, rowLen, nrows int) {
	if nrows <= 0 || rowLen <= 0 {
		return
	}
	if dstStride == rowLen && srcStride == rowLen {
		copy(dst[:rowLen*nrows], src[:rowLen*nrows])
		return
	}
	dOff, sOff := 0, 0
	for r := 0; r < nrows; r++ {
		copy(dst[dOff:dOff+rowLen], src[sOff:sOff+rowLen])
		dOff += dstStride
		sOff += srcStride
	}
}

// --- Slab transposes (1D decomposition) -------------------------------
//
// Fourier-side layout:  [mz][ny][nxh]  (x fastest, z-distributed)
// Physical-side layout: [my][nz][nxh]  (x fastest, y-distributed)
// with my = ny/p and nz = mz·p.

// PackYZ packs the Fourier-side slab src=[mz][ny][nxh] into p
// destination blocks of shape [mz][my][nxh]; block d carries y indices
// [d·my,(d+1)·my). dst must have length mz·ny·nxh.
func PackYZ[T any](dst, src []T, nxh, ny, mz, p int) {
	l := NewSlabLayout(nxh, ny, mz, p)
	l.check("PackYZ", len(dst), len(src))
	PackYZRange(&l, dst, src, 0, mz)
}

// UnpackYZ scatters the received blocks (block s = [mz][my][nxh] from
// rank s) into the physical-side slab dst=[my][nz][nxh].
func UnpackYZ[T any](dst, src []T, nxh, nz, my, p int) {
	l := NewSlabLayout(nxh, my*p, nz/p, p)
	l.check("UnpackYZ", len(dst), len(src))
	UnpackYZRange(&l, dst, src, 0, my)
}

// PackZY packs the physical-side slab src=[my][nz][nxh] into p blocks
// of shape [my][mz][nxh]; block d carries z indices [d·mz,(d+1)·mz).
func PackZY[T any](dst, src []T, nxh, nz, my, p int) {
	l := NewSlabLayout(nxh, my*p, nz/p, p)
	l.check("PackZY", len(dst), len(src))
	PackZYRange(&l, dst, src, 0, my)
}

// UnpackZY scatters the received blocks (block s = [my][mz][nxh] from
// rank s) into the Fourier-side slab dst=[mz][ny][nxh].
func UnpackZY[T any](dst, src []T, nxh, ny, mz, p int) {
	l := NewSlabLayout(nxh, ny, mz, p)
	l.check("UnpackZY", len(dst), len(src))
	UnpackZYRange(&l, dst, src, 0, mz)
}

// PackYZPencil packs only y indices [yLo,yHi) of the Fourier-side slab
// (one GPU-batched pencil of Fig 3) into per-destination sub-blocks of
// shape [mz][overlap][nxh], where overlap is the intersection of
// [yLo,yHi) with the destination's y range. Blocks are laid out
// back-to-back in destination order; the function returns the
// per-destination counts (in elements). This is the "pack one pencil,
// all-to-all one pencil" message layout of configuration B.
func PackYZPencil[T any](dst, src []T, nxh, ny, mz, p, yLo, yHi int) []int {
	counts := make([]int, p)
	PackYZPencilInto(counts, dst, src, nxh, ny, mz, p, yLo, yHi)
	return counts
}

// UnpackYZPencil places a pencil's worth of received blocks into the
// physical-side slab: block s holds z range [s·mz,(s+1)·mz) for the
// intersection of [yLo,yHi) with this rank's y range.
func UnpackYZPencil[T any](dst, src []T, nxh, nz, my, p, myLo, yLo, yHi int) {
	mz := nz / p
	lo := max(yLo, myLo)
	hi := min(yHi, myLo+my)
	if lo >= hi {
		return
	}
	w := hi - lo
	off := 0
	for s := 0; s < p; s++ {
		for iz := 0; iz < mz; iz++ {
			for iy := 0; iy < w; iy++ {
				dstOff := ((lo - myLo + iy) * nz * nxh) + (s*mz+iz)*nxh
				copy(dst[dstOff:dstOff+nxh], src[off:off+nxh])
				off += nxh
			}
		}
	}
}

// --- Pencil (2D decomposition) transposes ------------------------------
//
// Layout A (x-pencils): [mz][my][nx], x complete; y over row comm (Pr),
// z over col comm (Pc).
// Layout B (y-pencils): [mz][mx][ny], y complete and fastest.
// Layout C (z-pencils): [my2][mx][nz], z complete and fastest.

// PackRowAB packs layout A for the row all-to-all that completes y:
// block d = [mz][my][mx] carrying x indices [d·mx,(d+1)·mx).
func PackRowAB[T any](dst, src []T, nx, my, mz, pr int) {
	mx := nx / pr
	checkLen("PackRowAB", len(dst), len(src), mz*my*nx)
	bs := mz * my * mx
	for d := 0; d < pr; d++ {
		blk := dst[d*bs : (d+1)*bs]
		for iz := 0; iz < mz; iz++ {
			for iy := 0; iy < my; iy++ {
				srcOff := (iz*my+iy)*nx + d*mx
				dstOff := (iz*my + iy) * mx
				copy(blk[dstOff:dstOff+mx], src[srcOff:srcOff+mx])
			}
		}
	}
}

// UnpackRowAB scatters the received row blocks into layout B
// [mz][mx][ny] (y fastest): block s carries y range [s·my,(s+1)·my).
func UnpackRowAB[T any](dst, src []T, ny, mx, mz, pr int) {
	my := ny / pr
	checkLen("UnpackRowAB", len(dst), len(src), mz*mx*ny)
	bs := mz * my * mx
	for s := 0; s < pr; s++ {
		blk := src[s*bs : (s+1)*bs]
		for iz := 0; iz < mz; iz++ {
			for iy := 0; iy < my; iy++ {
				for ix := 0; ix < mx; ix++ {
					dst[(iz*mx+ix)*ny+s*my+iy] = blk[(iz*my+iy)*mx+ix]
				}
			}
		}
	}
}

// PackRowBA reverses UnpackRowAB: layout B → row blocks for the
// inverse transpose (block d = [mz][my][mx] carrying y range d).
func PackRowBA[T any](dst, src []T, ny, mx, mz, pr int) {
	my := ny / pr
	checkLen("PackRowBA", len(dst), len(src), mz*mx*ny)
	bs := mz * my * mx
	for d := 0; d < pr; d++ {
		blk := dst[d*bs : (d+1)*bs]
		for iz := 0; iz < mz; iz++ {
			for iy := 0; iy < my; iy++ {
				for ix := 0; ix < mx; ix++ {
					blk[(iz*my+iy)*mx+ix] = src[(iz*mx+ix)*ny+d*my+iy]
				}
			}
		}
	}
}

// UnpackRowBA reverses PackRowAB: received blocks → layout A
// [mz][my][nx] (block s carries x range [s·mx,(s+1)·mx)).
func UnpackRowBA[T any](dst, src []T, nx, my, mz, pr int) {
	mx := nx / pr
	checkLen("UnpackRowBA", len(dst), len(src), mz*my*nx)
	bs := mz * my * mx
	for s := 0; s < pr; s++ {
		blk := src[s*bs : (s+1)*bs]
		for iz := 0; iz < mz; iz++ {
			for iy := 0; iy < my; iy++ {
				dstOff := (iz*my+iy)*nx + s*mx
				srcOff := (iz*my + iy) * mx
				copy(dst[dstOff:dstOff+mx], blk[srcOff:srcOff+mx])
			}
		}
	}
}

// PackColBC packs layout B for the column all-to-all that completes z:
// block d = [mz][mx][my2] carrying y indices [d·my2,(d+1)·my2).
func PackColBC[T any](dst, src []T, ny, mx, mz, pc int) {
	my2 := ny / pc
	checkLen("PackColBC", len(dst), len(src), mz*mx*ny)
	bs := mz * mx * my2
	for d := 0; d < pc; d++ {
		blk := dst[d*bs : (d+1)*bs]
		for iz := 0; iz < mz; iz++ {
			for ix := 0; ix < mx; ix++ {
				srcOff := (iz*mx+ix)*ny + d*my2
				dstOff := (iz*mx + ix) * my2
				copy(blk[dstOff:dstOff+my2], src[srcOff:srcOff+my2])
			}
		}
	}
}

// UnpackColBC scatters the received column blocks into layout C
// [my2][mx][nz] (z fastest): block s carries z range [s·mz,(s+1)·mz).
func UnpackColBC[T any](dst, src []T, nz, mx, my2, pc int) {
	mz := nz / pc
	checkLen("UnpackColBC", len(dst), len(src), my2*mx*nz)
	bs := mz * mx * my2
	for s := 0; s < pc; s++ {
		blk := src[s*bs : (s+1)*bs]
		for iz := 0; iz < mz; iz++ {
			for ix := 0; ix < mx; ix++ {
				for iy := 0; iy < my2; iy++ {
					dst[(iy*mx+ix)*nz+s*mz+iz] = blk[(iz*mx+ix)*my2+iy]
				}
			}
		}
	}
}

// PackColCB reverses UnpackColBC for the inverse transform direction.
func PackColCB[T any](dst, src []T, nz, mx, my2, pc int) {
	mz := nz / pc
	checkLen("PackColCB", len(dst), len(src), my2*mx*nz)
	bs := mz * mx * my2
	for d := 0; d < pc; d++ {
		blk := dst[d*bs : (d+1)*bs]
		for iz := 0; iz < mz; iz++ {
			for ix := 0; ix < mx; ix++ {
				for iy := 0; iy < my2; iy++ {
					blk[(iz*mx+ix)*my2+iy] = src[(iy*mx+ix)*nz+d*mz+iz]
				}
			}
		}
	}
}

// UnpackColCB reverses PackColBC: received blocks → layout B.
func UnpackColCB[T any](dst, src []T, ny, mx, mz, pc int) {
	my2 := ny / pc
	checkLen("UnpackColCB", len(dst), len(src), mz*mx*ny)
	bs := mz * mx * my2
	for s := 0; s < pc; s++ {
		blk := src[s*bs : (s+1)*bs]
		for iz := 0; iz < mz; iz++ {
			for ix := 0; ix < mx; ix++ {
				dstOff := (iz*mx+ix)*ny + s*my2
				srcOff := (iz*mx + ix) * my2
				copy(dst[dstOff:dstOff+my2], blk[srcOff:srcOff+my2])
			}
		}
	}
}

func checkLen(op string, dst, src, want int) {
	if dst < want || src < want {
		panic(fmt.Sprintf("transpose: %s needs %d elements, got dst %d src %d", op, want, dst, src))
	}
}
