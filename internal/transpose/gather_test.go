package transpose

import (
	"fmt"
	"testing"
)

// buildSlabs fabricates every rank's Fourier-side slab with globally
// unique element values, so a misrouted gather is caught by value.
func buildFourierSlabs(l *SlabLayout) [][]complex128 {
	srcs := make([][]complex128, l.P)
	for s := range srcs {
		srcs[s] = make([]complex128, l.Total)
		for i := range srcs[s] {
			srcs[s][i] = complex(float64(s*l.Total+i), float64(s))
		}
	}
	return srcs
}

// The fused gather must be element-for-element identical to the
// staged pack → block exchange → unpack triple, for every rank of
// every tested world size — including P values that do not divide the
// row count evenly across workers.
func TestGatherYZMatchesStagedTriple(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		nxh, ny, mz := 5, 7*p, 3 // ny divisible by p by construction
		l := NewSlabLayout(nxh, ny, mz, p)
		srcs := buildFourierSlabs(&l)

		// Staged reference: every rank packs, blocks are exchanged
		// (block d of rank s becomes block s at rank d), rank me unpacks.
		packs := make([][]complex128, p)
		for s := range packs {
			packs[s] = make([]complex128, l.Total)
			PackYZ(packs[s], srcs[s], nxh, ny, mz, p)
		}
		for me := 0; me < p; me++ {
			recv := make([]complex128, l.Total)
			for s := 0; s < p; s++ {
				copy(recv[s*l.Block:(s+1)*l.Block], packs[s][me*l.Block:(me+1)*l.Block])
			}
			want := make([]complex128, l.Total)
			UnpackYZ(want, recv, nxh, l.Nz, l.My, p)

			got := make([]complex128, l.Total)
			GatherYZRange(&l, got, srcs, me, 0, l.My)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("P=%d me=%d: GatherYZ differs at %d: %v vs %v", p, me, i, got[i], want[i])
				}
			}

			// Chunked: per-peer gathers in pairwise-exchange order over a
			// ragged row partition must compose to the same result.
			chunked := make([]complex128, l.Total)
			for r := 0; r < p; r++ {
				s := (me + r) % p
				for _, cut := range [][2]int{{0, 1}, {1, l.My}} {
					if cut[0] < cut[1] {
						GatherYZPeer(&l, chunked, srcs[s], me, s, cut[0], cut[1])
					}
				}
			}
			for i := range want {
				if chunked[i] != want[i] {
					t.Fatalf("P=%d me=%d: chunked GatherYZPeer differs at %d", p, me, i)
				}
			}
		}
	}
}

func TestGatherZYMatchesStagedTriple(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		nxh, ny, mz := 4, 2*p, 3
		l := NewSlabLayout(nxh, ny, mz, p)
		// Physical-side slabs: [My][Nz][Nxh], same Total.
		srcs := make([][]complex128, p)
		for s := range srcs {
			srcs[s] = make([]complex128, l.Total)
			for i := range srcs[s] {
				srcs[s][i] = complex(float64(s*l.Total+i), -float64(s))
			}
		}
		packs := make([][]complex128, p)
		for s := range packs {
			packs[s] = make([]complex128, l.Total)
			PackZY(packs[s], srcs[s], nxh, l.Nz, l.My, p)
		}
		for me := 0; me < p; me++ {
			recv := make([]complex128, l.Total)
			for s := 0; s < p; s++ {
				copy(recv[s*l.Block:(s+1)*l.Block], packs[s][me*l.Block:(me+1)*l.Block])
			}
			want := make([]complex128, l.Total)
			UnpackZY(want, recv, nxh, ny, mz, p)

			got := make([]complex128, l.Total)
			GatherZYRange(&l, got, srcs, me, 0, l.Mz)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("P=%d me=%d: GatherZY differs at %d: %v vs %v", p, me, i, got[i], want[i])
				}
			}

			chunked := make([]complex128, l.Total)
			for r := 0; r < p; r++ {
				s := (me + r) % p
				GatherZYPeer(&l, chunked, srcs[s], me, s, 0, l.Mz)
			}
			for i := range want {
				if chunked[i] != want[i] {
					t.Fatalf("P=%d me=%d: chunked GatherZYPeer differs at %d", p, me, i)
				}
			}
		}
	}
}

// CopyStrided's contiguous fast path must be exact for every
// stride/rowLen relationship the kernels use.
func TestCopyStridedFastPath(t *testing.T) {
	for _, tc := range []struct {
		dstStride, srcStride, rowLen, nrows int
	}{
		{8, 8, 8, 16},  // fully contiguous: single-copy fast path
		{8, 16, 8, 8},  // contiguous dst, strided src
		{16, 8, 8, 8},  // strided dst, contiguous src
		{10, 12, 7, 9}, // both strided
		{8, 8, 8, 0},   // empty
		{8, 8, 0, 4},   // zero-width rows
	} {
		srcLen := tc.srcStride*(tc.nrows-1) + tc.rowLen
		dstLen := tc.dstStride*(tc.nrows-1) + tc.rowLen
		if tc.nrows == 0 {
			srcLen, dstLen = 0, 0
		}
		src := make([]float64, srcLen)
		for i := range src {
			src[i] = float64(i + 1)
		}
		got := make([]float64, dstLen)
		want := make([]float64, dstLen)
		CopyStrided(got, tc.dstStride, src, tc.srcStride, tc.rowLen, tc.nrows)
		for r := 0; r < tc.nrows; r++ { // reference: naive row loop
			copy(want[r*tc.dstStride:r*tc.dstStride+tc.rowLen], src[r*tc.srcStride:r*tc.srcStride+tc.rowLen])
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v: differs at %d: %v vs %v", tc, i, got[i], want[i])
			}
		}
	}
}

// BenchmarkCopyStrided pins the satellite fix: the fully-contiguous
// shape must collapse to one copy (rows/contig ratio is the win), and
// the strided shape must not regress from hoisting the bounds.
func BenchmarkCopyStrided(b *testing.B) {
	const rowLen, nrows = 128, 256
	src := make([]complex128, rowLen*nrows)
	dst := make([]complex128, 2*rowLen*nrows)
	for _, bc := range []struct {
		name                 string
		dstStride, srcStride int
	}{
		{"contig", rowLen, rowLen},
		{"rows", 2 * rowLen, rowLen},
	} {
		b.Run(fmt.Sprintf("%s_%dx%d", bc.name, nrows, rowLen), func(b *testing.B) {
			b.SetBytes(int64(16 * rowLen * nrows))
			for i := 0; i < b.N; i++ {
				CopyStrided(dst, bc.dstStride, src, bc.srcStride, rowLen, nrows)
			}
		})
	}
}
