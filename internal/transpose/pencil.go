package transpose

// Pencil-decomposition layouts and transpose kernels.
//
// A pencil decomposition distributes the N³ field over a Pr×Pc
// process grid: rank (yG, zG) owns the y range [yG·My, (yG+1)·My) and
// z range [zG·Mz, (zG+1)·Mz) of the physical field, with the x axis
// complete — an N/Pr × N/Pc × N pencil. Unlike the slab layout this
// scales past P = N ranks: only Pr and Pc individually must divide N.
//
// The distributed transform then needs two transpose-exchanges instead
// of the slab's one, each over a sub-communicator of the process grid
// and each expressible as the same staged Pack/A2A/Unpack triple or
// fused zero-copy gather as the slab exchange:
//
//   - the column exchange (within a column group of Pc ranks sharing
//     yG) trades the local z chunk for a full z extent by splitting
//     the Hermitian-reduced x axis over the group — x-complete
//     XSpec = [My][Mz][Nxh] ↔ z-complete B = [My][Wc][Nz];
//   - the row exchange (within a row group of Pr ranks sharing zG)
//     trades the local y chunk for a full y extent by splitting the
//     (already column-split) z axis over the group — z-complete
//     B = [My][Wc][Nz] ↔ y-complete C = [Mz2][Wc][Ny].
//
// The forward per-axis FFT order is therefore x (r2c, on the pencil),
// z (after the column exchange), y (after the row exchange) — exactly
// the slab engine's order, which is what makes the pencil transform
// bitwise-identical to the slab transform: the fft batches gather
// every line into contiguous scratch, so per-line results do not
// depend on the memory layout the line was read from, and identical
// axis order means identical per-line inputs.
//
// Nxh = N/2+1 is in general not divisible by Pc, so the x axis splits
// unevenly: SplitSpan gives the first Nxh%Pc column groups one extra
// element. Kernels take the per-group spans from the layout; the
// staged pack blocks are padded to the widest span so the persistent
// all-to-all keeps its even-block shape.

// Span is a half-open index range [Lo, Hi).
type Span struct{ Lo, Hi int }

// Width returns the number of indices in the span.
func (s Span) Width() int { return s.Hi - s.Lo }

// SplitSpan divides [0, total) into parts contiguous spans, the first
// total%parts spans one element wider — the standard uneven-split
// convention, identical on every rank.
func SplitSpan(total, parts int) []Span {
	q, r := total/parts, total%parts
	spans := make([]Span, parts)
	lo := 0
	for i := range spans {
		w := q
		if i < r {
			w++
		}
		spans[i] = Span{Lo: lo, Hi: lo + w}
		lo += w
	}
	return spans
}

// PencilLayout captures one rank's geometry in a Pr×Pc pencil
// decomposition of an N³ real field, as seen from grid position
// (YRank, ZRank).
type PencilLayout struct {
	// N is the transform size per axis, Nxh = N/2+1 the
	// Hermitian-reduced x extent.
	N, Nxh int
	// Pr×Pc is the process grid; YRank indexes the rank's row group
	// position (its column communicator rank), ZRank its column group
	// position (its row communicator rank).
	Pr, Pc       int
	YRank, ZRank int
	// My = N/Pr and Mz = N/Pc are the physical pencil's local y and z
	// extents. Mz2 = N/Pr is the local z extent of the y-complete
	// spectral layout C (z re-splits over the row group).
	My, Mz, Mz2 int
	// XSpans is the uneven split of [0, Nxh) over the Pc column
	// groups; Wc = XSpans[ZRank].Width() is this rank's x width in
	// the z- and y-complete layouts, XLo its offset, WcMax the widest
	// group's width.
	XSpans  []Span
	Wc, XLo int
	WcMax   int
	// BlockC and BlockR are the per-peer staged block sizes of the
	// column and row exchanges. BlockC is padded to WcMax so the
	// column all-to-all keeps even blocks despite the uneven x split;
	// only the leading My·Mz·width(peer) elements of each block are
	// meaningful.
	BlockC, BlockR int
	// PadXLen is len(XSpec) rounded up to a multiple of Pc: My·Mz·Nxh
	// need not divide evenly by the column group size, and the fused
	// exchange plans require a group-divisible published length. The
	// padding tail is never read.
	PadXLen int
}

// NewPencilLayout builds the layout for grid position (yRank, zRank)
// of a Pr×Pc decomposition of an N³ field. It panics when the
// decomposition cannot lay out the field: Pr and Pc must divide N and
// every column group must own a non-empty x span (Pc ≤ N/2+1).
func NewPencilLayout(n, pr, pc, yRank, zRank int) *PencilLayout {
	if n <= 0 || n%2 != 0 {
		panic("transpose: pencil layout needs even N > 0")
	}
	if pr <= 0 || pc <= 0 || n%pr != 0 || n%pc != 0 {
		panic("transpose: pencil grid dims must divide N")
	}
	nxh := n/2 + 1
	if pc > nxh {
		panic("transpose: Pc exceeds N/2+1 (empty x spans)")
	}
	if yRank < 0 || yRank >= pr || zRank < 0 || zRank >= pc {
		panic("transpose: pencil grid position out of range")
	}
	l := &PencilLayout{
		N: n, Nxh: nxh,
		Pr: pr, Pc: pc,
		YRank: yRank, ZRank: zRank,
		My: n / pr, Mz: n / pc, Mz2: n / pr,
		XSpans: SplitSpan(nxh, pc),
	}
	l.Wc = l.XSpans[zRank].Width()
	l.XLo = l.XSpans[zRank].Lo
	l.WcMax = l.XSpans[0].Width()
	l.BlockC = l.My * l.Mz * l.WcMax
	l.BlockR = l.My * l.Wc * l.Mz2
	xlen := l.My * l.Mz * l.Nxh
	l.PadXLen = (xlen + pc - 1) / pc * pc
	return l
}

// XSpecLen, BLen and CLen are the (unpadded) element counts of the
// three exchange layouts.
func (l *PencilLayout) XSpecLen() int { return l.My * l.Mz * l.Nxh }
func (l *PencilLayout) BLen() int     { return l.My * l.Wc * l.N }
func (l *PencilLayout) CLen() int     { return l.Mz2 * l.Wc * l.N }

// --- column exchange (x-complete ↔ z-complete, within a column group) ----

// PencilGatherColFwdRange gathers y-planes [iyLo,iyHi) of the
// z-complete layout dst=[My][Wc][Nz] directly from every column-group
// peer's x-complete layout srcs[s]=[My][Mz][Nxh] (padded): peer s's z
// chunk lands in dst's z range [s·Mz,(s+1)·Mz), and dst keeps only
// this rank's x span. Distinct iy ranges write disjoint dst elements.
//
//psdns:hotpath
func PencilGatherColFwdRange[T any](l *PencilLayout, dst []T, srcs [][]T, iyLo, iyHi int) {
	for s := 0; s < l.Pc; s++ {
		PencilGatherColFwdPeer(l, dst, srcs[s], s, iyLo, iyHi)
	}
}

// PencilGatherColFwdPeer gathers peer s's contribution to y-planes
// [iyLo,iyHi) of the z-complete layout.
//
//psdns:hotpath
func PencilGatherColFwdPeer[T any](l *PencilLayout, dst, src []T, s, iyLo, iyHi int) {
	n, nxh, mz, wc, xlo := l.N, l.Nxh, l.Mz, l.Wc, l.XLo
	for iy := iyLo; iy < iyHi; iy++ {
		for ix := 0; ix < wc; ix++ {
			srcOff := (iy*mz)*nxh + xlo + ix
			dstOff := (iy*wc+ix)*n + s*mz
			for iz := 0; iz < mz; iz++ {
				dst[dstOff+iz] = src[srcOff]
				srcOff += nxh
			}
		}
	}
}

// PencilGatherColInvRange gathers y-planes [iyLo,iyHi) of the
// x-complete layout dst=[My][Mz][Nxh] from every column-group peer's
// z-complete layout srcs[s]=[My][Wc(s)][Nz]: peer s contributes x span
// XSpans[s], and only this rank's z chunk [ZRank·Mz, …) is read from
// each peer. Distinct iy ranges write disjoint dst elements.
//
//psdns:hotpath
func PencilGatherColInvRange[T any](l *PencilLayout, dst []T, srcs [][]T, iyLo, iyHi int) {
	for s := 0; s < l.Pc; s++ {
		PencilGatherColInvPeer(l, dst, srcs[s], s, iyLo, iyHi)
	}
}

// PencilGatherColInvPeer gathers peer s's x span into y-planes
// [iyLo,iyHi) of the x-complete layout.
//
//psdns:hotpath
func PencilGatherColInvPeer[T any](l *PencilLayout, dst, src []T, s, iyLo, iyHi int) {
	n, nxh, mz := l.N, l.Nxh, l.Mz
	sp := l.XSpans[s]
	ws := sp.Width()
	zBase := l.ZRank * mz
	for iy := iyLo; iy < iyHi; iy++ {
		for iz := 0; iz < mz; iz++ {
			srcOff := (iy*ws)*n + zBase + iz
			dstOff := (iy*mz+iz)*nxh + sp.Lo
			for ix := 0; ix < ws; ix++ {
				dst[dstOff+ix] = src[srcOff]
				srcOff += n
			}
		}
	}
}

// PencilPackColFwdRange packs y-planes [iyLo,iyHi) of the x-complete
// layout src=[My][Mz][Nxh] into per-destination blocks: block d holds
// [My][Mz][Width(d)] — destination d's x span, row by row — padded to
// BlockC. Distinct iy ranges write disjoint pack elements.
//
//psdns:hotpath
func PencilPackColFwdRange[T any](l *PencilLayout, pack, src []T, iyLo, iyHi int) {
	nxh, mz := l.Nxh, l.Mz
	for d := 0; d < l.Pc; d++ {
		sp := l.XSpans[d]
		wd := sp.Width()
		base := d * l.BlockC
		for iy := iyLo; iy < iyHi; iy++ {
			for iz := 0; iz < mz; iz++ {
				row := (iy*mz + iz)
				copy(pack[base+row*wd:base+(row+1)*wd], src[row*nxh+sp.Lo:row*nxh+sp.Hi])
			}
		}
	}
}

// PencilUnpackColFwdRange unpacks received column blocks into
// y-planes [iyLo,iyHi) of the z-complete layout dst=[My][Wc][Nz]:
// recv block s (layout [My][Mz][Wc], padded to BlockC) carries peer
// s's z chunk of this rank's x span.
//
//psdns:hotpath
func PencilUnpackColFwdRange[T any](l *PencilLayout, dst, recv []T, iyLo, iyHi int) {
	n, mz, wc := l.N, l.Mz, l.Wc
	for s := 0; s < l.Pc; s++ {
		base := s * l.BlockC
		for iy := iyLo; iy < iyHi; iy++ {
			for ix := 0; ix < wc; ix++ {
				srcOff := base + (iy*mz)*wc + ix
				dstOff := (iy*wc+ix)*n + s*mz
				for iz := 0; iz < mz; iz++ {
					dst[dstOff+iz] = recv[srcOff]
					srcOff += wc
				}
			}
		}
	}
}

// PencilPackColInvRange packs y-planes [iyLo,iyHi) of the z-complete
// layout src=[My][Wc][Nz] into per-destination blocks: block d holds
// [My][Wc][Mz] — destination d's z chunk, contiguous per (iy, ix) —
// padded to BlockC. Distinct iy ranges write disjoint pack elements.
//
//psdns:hotpath
func PencilPackColInvRange[T any](l *PencilLayout, pack, src []T, iyLo, iyHi int) {
	n, mz, wc := l.N, l.Mz, l.Wc
	for d := 0; d < l.Pc; d++ {
		base := d * l.BlockC
		for iy := iyLo; iy < iyHi; iy++ {
			for ix := 0; ix < wc; ix++ {
				srcOff := (iy*wc+ix)*n + d*mz
				dstOff := base + (iy*wc+ix)*mz
				copy(pack[dstOff:dstOff+mz], src[srcOff:srcOff+mz])
			}
		}
	}
}

// PencilUnpackColInvRange unpacks received column blocks into
// y-planes [iyLo,iyHi) of the x-complete layout dst=[My][Mz][Nxh]:
// recv block s (layout [My][Width(s)][Mz], padded to BlockC) carries
// peer s's x span of this rank's z chunk.
//
//psdns:hotpath
func PencilUnpackColInvRange[T any](l *PencilLayout, dst, recv []T, iyLo, iyHi int) {
	nxh, mz := l.Nxh, l.Mz
	for s := 0; s < l.Pc; s++ {
		sp := l.XSpans[s]
		ws := sp.Width()
		base := s * l.BlockC
		for iy := iyLo; iy < iyHi; iy++ {
			for iz := 0; iz < mz; iz++ {
				srcOff := base + (iy*ws)*mz + iz
				dstOff := (iy*mz+iz)*nxh + sp.Lo
				for ix := 0; ix < ws; ix++ {
					dst[dstOff+ix] = recv[srcOff]
					srcOff += mz
				}
			}
		}
	}
}

// --- row exchange (z-complete ↔ y-complete, within a row group) ----------

// PencilGatherRowFwdRange gathers z-planes [izLo,izHi) of the
// y-complete layout dst=[Mz2][Wc][Ny] directly from every row-group
// peer's z-complete layout srcs[s]=[My][Wc][Nz]: peer s's y chunk
// lands in dst's y range [s·My,(s+1)·My), and only this rank's
// re-split z chunk [YRank·Mz2, …) is read from each peer. Distinct iz
// ranges write disjoint dst elements.
//
//psdns:hotpath
func PencilGatherRowFwdRange[T any](l *PencilLayout, dst []T, srcs [][]T, izLo, izHi int) {
	for s := 0; s < l.Pr; s++ {
		PencilGatherRowFwdPeer(l, dst, srcs[s], s, izLo, izHi)
	}
}

// PencilGatherRowFwdPeer gathers peer s's contribution to z-planes
// [izLo,izHi) of the y-complete layout.
//
//psdns:hotpath
func PencilGatherRowFwdPeer[T any](l *PencilLayout, dst, src []T, s, izLo, izHi int) {
	n, my, mz2, wc := l.N, l.My, l.Mz2, l.Wc
	zBase := l.YRank * mz2
	for iz := izLo; iz < izHi; iz++ {
		for ix := 0; ix < wc; ix++ {
			srcOff := ix*n + zBase + iz
			dstOff := (iz*wc+ix)*n + s*my
			for iy := 0; iy < my; iy++ {
				dst[dstOff+iy] = src[srcOff]
				srcOff += wc * n
			}
		}
	}
}

// PencilGatherRowInvRange gathers y-planes [iyLo,iyHi) of the
// z-complete layout dst=[My][Wc][Nz] from every row-group peer's
// y-complete layout srcs[s]=[Mz2][Wc][Ny]: peer s's z chunk lands in
// dst's z range [s·Mz2,(s+1)·Mz2), and only this rank's y chunk
// [YRank·My, …) is read from each peer. Distinct iy ranges write
// disjoint dst elements.
//
//psdns:hotpath
func PencilGatherRowInvRange[T any](l *PencilLayout, dst []T, srcs [][]T, iyLo, iyHi int) {
	for s := 0; s < l.Pr; s++ {
		PencilGatherRowInvPeer(l, dst, srcs[s], s, iyLo, iyHi)
	}
}

// PencilGatherRowInvPeer gathers peer s's contribution to y-planes
// [iyLo,iyHi) of the z-complete layout.
//
//psdns:hotpath
func PencilGatherRowInvPeer[T any](l *PencilLayout, dst, src []T, s, iyLo, iyHi int) {
	n, my, mz2, wc := l.N, l.My, l.Mz2, l.Wc
	yBase := l.YRank * my
	for iy := iyLo; iy < iyHi; iy++ {
		for ix := 0; ix < wc; ix++ {
			srcOff := ix*n + yBase + iy
			dstOff := (iy*wc+ix)*n + s*mz2
			for iz := 0; iz < mz2; iz++ {
				dst[dstOff+iz] = src[srcOff]
				srcOff += wc * n
			}
		}
	}
}

// PencilPackRowFwdRange packs y-planes [iyLo,iyHi) of the z-complete
// layout src=[My][Wc][Nz] into per-destination blocks: block d holds
// [My][Wc][Mz2] — destination d's re-split z chunk, contiguous per
// (iy, ix). Distinct iy ranges write disjoint pack elements.
//
//psdns:hotpath
func PencilPackRowFwdRange[T any](l *PencilLayout, pack, src []T, iyLo, iyHi int) {
	n, mz2, wc := l.N, l.Mz2, l.Wc
	for d := 0; d < l.Pr; d++ {
		base := d * l.BlockR
		for iy := iyLo; iy < iyHi; iy++ {
			for ix := 0; ix < wc; ix++ {
				srcOff := (iy*wc+ix)*n + d*mz2
				dstOff := base + (iy*wc+ix)*mz2
				copy(pack[dstOff:dstOff+mz2], src[srcOff:srcOff+mz2])
			}
		}
	}
}

// PencilUnpackRowFwdRange unpacks received row blocks into z-planes
// [izLo,izHi) of the y-complete layout dst=[Mz2][Wc][Ny]: recv block s
// (layout [My][Wc][Mz2]) carries peer s's y chunk of this rank's
// re-split z chunk.
//
//psdns:hotpath
func PencilUnpackRowFwdRange[T any](l *PencilLayout, dst, recv []T, izLo, izHi int) {
	n, my, mz2, wc := l.N, l.My, l.Mz2, l.Wc
	for s := 0; s < l.Pr; s++ {
		base := s * l.BlockR
		for iz := izLo; iz < izHi; iz++ {
			for ix := 0; ix < wc; ix++ {
				srcOff := base + ix*mz2 + iz
				dstOff := (iz*wc+ix)*n + s*my
				for iy := 0; iy < my; iy++ {
					dst[dstOff+iy] = recv[srcOff]
					srcOff += wc * mz2
				}
			}
		}
	}
}

// PencilPackRowInvRange packs z-planes [izLo,izHi) of the y-complete
// layout src=[Mz2][Wc][Ny] into per-destination blocks: block d holds
// [Mz2][Wc][My] — destination d's y chunk, contiguous per (iz, ix).
// Distinct iz ranges write disjoint pack elements.
//
//psdns:hotpath
func PencilPackRowInvRange[T any](l *PencilLayout, pack, src []T, izLo, izHi int) {
	n, my, wc := l.N, l.My, l.Wc
	for d := 0; d < l.Pr; d++ {
		base := d * l.BlockR
		for iz := izLo; iz < izHi; iz++ {
			for ix := 0; ix < wc; ix++ {
				srcOff := (iz*wc+ix)*n + d*my
				dstOff := base + (iz*wc+ix)*my
				copy(pack[dstOff:dstOff+my], src[srcOff:srcOff+my])
			}
		}
	}
}

// PencilUnpackRowInvRange unpacks received row blocks into y-planes
// [iyLo,iyHi) of the z-complete layout dst=[My][Wc][Nz]: recv block s
// (layout [Mz2][Wc][My]) carries peer s's re-split z chunk of this
// rank's y chunk.
//
//psdns:hotpath
func PencilUnpackRowInvRange[T any](l *PencilLayout, dst, recv []T, iyLo, iyHi int) {
	n, my, mz2, wc := l.N, l.My, l.Mz2, l.Wc
	for s := 0; s < l.Pr; s++ {
		base := s * l.BlockR
		for iy := iyLo; iy < iyHi; iy++ {
			for ix := 0; ix < wc; ix++ {
				srcOff := base + ix*my + iy
				dstOff := (iy*wc+ix)*n + s*mz2
				for iz := 0; iz < mz2; iz++ {
					dst[dstOff+iz] = recv[srcOff]
					srcOff += wc * my
				}
			}
		}
	}
}
