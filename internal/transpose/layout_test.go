package transpose

import (
	"math/rand"
	"testing"
)

// Partitioned Range calls must reproduce the full-range kernels exactly
// — the property the worker teams rely on when splitting one pack or
// unpack across workers.
func TestSlabRangePartitionEquivalence(t *testing.T) {
	const nxh, ny, mz, p = 5, 12, 6, 4
	l := NewSlabLayout(nxh, ny, mz, p)
	rng := rand.New(rand.NewSource(42))
	src := make([]complex128, l.Total)
	for i := range src {
		src[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}

	type rangeFn func(l *SlabLayout, dst, src []complex128, lo, hi int)
	cases := []struct {
		name  string
		outer int // iteration count of the partitionable loop
		fn    rangeFn
	}{
		{"PackYZ", l.Mz, PackYZRange[complex128]},
		{"UnpackYZ", l.My, UnpackYZRange[complex128]},
		{"PackZY", l.My, PackZYRange[complex128]},
		{"UnpackZY", l.Mz, UnpackZYRange[complex128]},
	}
	for _, c := range cases {
		want := make([]complex128, l.Total)
		c.fn(&l, want, src, 0, c.outer)
		for _, parts := range [][]int{{1, c.outer}, {2, 3, c.outer}, {c.outer - 1, c.outer}} {
			got := make([]complex128, l.Total)
			lo := 0
			for _, hi := range parts {
				if hi > c.outer {
					hi = c.outer
				}
				c.fn(&l, got, src, lo, hi)
				lo = hi
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: partition %v differs at %d", c.name, parts, i)
				}
			}
		}
	}
}

// The layout-based wrappers must match a pack→unpack round trip: the
// physical slab recovered from PackYZ+UnpackYZ must invert through
// PackZY+UnpackZY.
func TestSlabLayoutRoundTrip(t *testing.T) {
	const nxh, ny, mz, p = 3, 8, 4, 2
	l := NewSlabLayout(nxh, ny, mz, p)
	src := make([]complex128, l.Total)
	for i := range src {
		src[i] = complex(float64(i), -float64(i))
	}
	packed := make([]complex128, l.Total)
	phys := make([]complex128, l.Total)
	packed2 := make([]complex128, l.Total)
	back := make([]complex128, l.Total)
	PackYZRange(&l, packed, src, 0, l.Mz)
	// In-process "exchange": with one rank per block the alltoall is the
	// identity on block order for self-consistency of the layout.
	UnpackYZRange(&l, phys, packed, 0, l.My)
	PackZYRange(&l, packed2, phys, 0, l.My)
	UnpackZYRange(&l, back, packed2, 0, l.Mz)
	for i := range back {
		if back[i] != src[i] {
			t.Fatalf("round trip differs at %d: %v vs %v", i, back[i], src[i])
		}
	}
}

func TestPackYZPencilIntoMatchesAlloc(t *testing.T) {
	const nxh, ny, mz, p = 4, 12, 3, 3
	src := make([]float64, mz*ny*nxh)
	for i := range src {
		src[i] = float64(i * 7 % 13)
	}
	for _, yr := range [][2]int{{0, 12}, {2, 9}, {4, 4}, {11, 12}} {
		d1 := make([]float64, len(src))
		d2 := make([]float64, len(src))
		counts1 := PackYZPencil(d1, src, nxh, ny, mz, p, yr[0], yr[1])
		counts2 := make([]int, p)
		PackYZPencilInto(counts2, d2, src, nxh, ny, mz, p, yr[0], yr[1])
		for d := 0; d < p; d++ {
			if counts1[d] != counts2[d] {
				t.Fatalf("y=%v counts differ at %d: %d vs %d", yr, d, counts1[d], counts2[d])
			}
		}
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatalf("y=%v data differs at %d", yr, i)
			}
		}
	}
}
