package transpose

import (
	"fmt"
	"testing"
)

// global assigns every (ix, iy, iz) coordinate a unique value so any
// misrouted element is caught exactly.
func pencilVal(ix, iy, iz int) complex128 {
	return complex(float64(ix*1_000_000+iy*1_000+iz), float64(ix-iy+iz))
}

func TestSplitSpan(t *testing.T) {
	spans := SplitSpan(7, 4)
	want := []Span{{0, 2}, {2, 4}, {4, 6}, {6, 7}}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("SplitSpan(7,4)[%d] = %+v, want %+v", i, spans[i], want[i])
		}
	}
	total := 0
	for _, s := range SplitSpan(9, 2) {
		total += s.Width()
	}
	if total != 9 {
		t.Fatalf("SplitSpan widths sum to %d, want 9", total)
	}
}

// The pencil kernels must route every element correctly for even and
// uneven x splits, and the staged pack→exchange→unpack triple must be
// bitwise-identical to the fused gather in both exchanges and both
// directions.
func TestPencilKernelsRouteAndAgree(t *testing.T) {
	const n = 12
	grids := []struct{ pr, pc int }{{1, 1}, {2, 2}, {3, 2}, {2, 3}, {1, 4}, {4, 1}, {6, 2}, {2, 4}}
	for _, g := range grids {
		t.Run(fmt.Sprintf("%dx%d", g.pr, g.pc), func(t *testing.T) {
			pr, pc := g.pr, g.pc
			lays := make([][]*PencilLayout, pr)
			xspec := make([][][]complex128, pr) // [yG][zG] x-complete
			for yG := 0; yG < pr; yG++ {
				lays[yG] = make([]*PencilLayout, pc)
				xspec[yG] = make([][]complex128, pc)
				for zG := 0; zG < pc; zG++ {
					l := NewPencilLayout(n, pr, pc, yG, zG)
					lays[yG][zG] = l
					buf := make([]complex128, l.PadXLen)
					for iy := 0; iy < l.My; iy++ {
						for iz := 0; iz < l.Mz; iz++ {
							for ix := 0; ix < l.Nxh; ix++ {
								buf[(iy*l.Mz+iz)*l.Nxh+ix] =
									pencilVal(ix, yG*l.My+iy, zG*l.Mz+iz)
							}
						}
					}
					xspec[yG][zG] = buf
				}
			}

			// Column exchange forward: x-complete → z-complete.
			bFused := make([][][]complex128, pr)
			for yG := 0; yG < pr; yG++ {
				bFused[yG] = make([][]complex128, pc)
				srcs := make([][]complex128, pc)
				for zG := 0; zG < pc; zG++ {
					srcs[zG] = xspec[yG][zG]
				}
				for zG := 0; zG < pc; zG++ {
					l := lays[yG][zG]
					dst := make([]complex128, l.BLen())
					PencilGatherColFwdRange(l, dst, srcs, 0, l.My)
					for iy := 0; iy < l.My; iy++ {
						for ix := 0; ix < l.Wc; ix++ {
							for iz := 0; iz < n; iz++ {
								got := dst[(iy*l.Wc+ix)*n+iz]
								want := pencilVal(l.XLo+ix, yG*l.My+iy, iz)
								if got != want {
									t.Fatalf("col fwd (%d,%d) B[%d,%d,%d] = %v, want %v",
										yG, zG, iy, ix, iz, got, want)
								}
							}
						}
					}
					bFused[yG][zG] = dst
				}
				// Staged triple must match the fused gather bitwise.
				packs := make([][]complex128, pc)
				for zG := 0; zG < pc; zG++ {
					l := lays[yG][zG]
					packs[zG] = make([]complex128, pc*l.BlockC)
					PencilPackColFwdRange(l, packs[zG], xspec[yG][zG], 0, l.My)
				}
				for zG := 0; zG < pc; zG++ {
					l := lays[yG][zG]
					recv := make([]complex128, pc*l.BlockC)
					for s := 0; s < pc; s++ {
						copy(recv[s*l.BlockC:(s+1)*l.BlockC],
							packs[s][zG*l.BlockC:(zG+1)*l.BlockC])
					}
					dst := make([]complex128, l.BLen())
					PencilUnpackColFwdRange(l, dst, recv, 0, l.My)
					for i := range dst {
						if dst[i] != bFused[yG][zG][i] {
							t.Fatalf("col fwd staged (%d,%d) differs at %d", yG, zG, i)
						}
					}
				}
			}

			// Row exchange forward: z-complete → y-complete.
			cFused := make([][][]complex128, pr)
			for yG := 0; yG < pr; yG++ {
				cFused[yG] = make([][]complex128, pc)
			}
			for zG := 0; zG < pc; zG++ {
				srcs := make([][]complex128, pr)
				for yG := 0; yG < pr; yG++ {
					srcs[yG] = bFused[yG][zG]
				}
				for yG := 0; yG < pr; yG++ {
					l := lays[yG][zG]
					dst := make([]complex128, l.CLen())
					PencilGatherRowFwdRange(l, dst, srcs, 0, l.Mz2)
					for iz := 0; iz < l.Mz2; iz++ {
						for ix := 0; ix < l.Wc; ix++ {
							for iy := 0; iy < n; iy++ {
								got := dst[(iz*l.Wc+ix)*n+iy]
								want := pencilVal(l.XLo+ix, iy, yG*l.Mz2+iz)
								if got != want {
									t.Fatalf("row fwd (%d,%d) C[%d,%d,%d] = %v, want %v",
										yG, zG, iz, ix, iy, got, want)
								}
							}
						}
					}
					cFused[yG][zG] = dst
				}
				packs := make([][]complex128, pr)
				for yG := 0; yG < pr; yG++ {
					l := lays[yG][zG]
					packs[yG] = make([]complex128, pr*l.BlockR)
					PencilPackRowFwdRange(l, packs[yG], bFused[yG][zG], 0, l.My)
				}
				for yG := 0; yG < pr; yG++ {
					l := lays[yG][zG]
					recv := make([]complex128, pr*l.BlockR)
					for s := 0; s < pr; s++ {
						copy(recv[s*l.BlockR:(s+1)*l.BlockR],
							packs[s][yG*l.BlockR:(yG+1)*l.BlockR])
					}
					dst := make([]complex128, l.CLen())
					PencilUnpackRowFwdRange(l, dst, recv, 0, l.Mz2)
					for i := range dst {
						if dst[i] != cFused[yG][zG][i] {
							t.Fatalf("row fwd staged (%d,%d) differs at %d", yG, zG, i)
						}
					}
				}
			}

			// Row exchange inverse: y-complete → z-complete recovers B.
			for zG := 0; zG < pc; zG++ {
				srcs := make([][]complex128, pr)
				for yG := 0; yG < pr; yG++ {
					srcs[yG] = cFused[yG][zG]
				}
				for yG := 0; yG < pr; yG++ {
					l := lays[yG][zG]
					dst := make([]complex128, l.BLen())
					PencilGatherRowInvRange(l, dst, srcs, 0, l.My)
					for i := range dst {
						if dst[i] != bFused[yG][zG][i] {
							t.Fatalf("row inv (%d,%d) differs from B at %d", yG, zG, i)
						}
					}
				}
				packs := make([][]complex128, pr)
				for yG := 0; yG < pr; yG++ {
					l := lays[yG][zG]
					packs[yG] = make([]complex128, pr*l.BlockR)
					PencilPackRowInvRange(l, packs[yG], cFused[yG][zG], 0, l.Mz2)
				}
				for yG := 0; yG < pr; yG++ {
					l := lays[yG][zG]
					recv := make([]complex128, pr*l.BlockR)
					for s := 0; s < pr; s++ {
						copy(recv[s*l.BlockR:(s+1)*l.BlockR],
							packs[s][yG*l.BlockR:(yG+1)*l.BlockR])
					}
					dst := make([]complex128, l.BLen())
					PencilUnpackRowInvRange(l, dst, recv, 0, l.My)
					for i := range dst {
						if dst[i] != bFused[yG][zG][i] {
							t.Fatalf("row inv staged (%d,%d) differs at %d", yG, zG, i)
						}
					}
				}
			}

			// Column exchange inverse: z-complete → x-complete recovers
			// the original (meaningful prefix of the) x-complete layout.
			for yG := 0; yG < pr; yG++ {
				srcs := make([][]complex128, pc)
				for zG := 0; zG < pc; zG++ {
					srcs[zG] = bFused[yG][zG]
				}
				for zG := 0; zG < pc; zG++ {
					l := lays[yG][zG]
					dst := make([]complex128, l.PadXLen)
					PencilGatherColInvRange(l, dst, srcs, 0, l.My)
					for i := 0; i < l.XSpecLen(); i++ {
						if dst[i] != xspec[yG][zG][i] {
							t.Fatalf("col inv (%d,%d) differs from xspec at %d", yG, zG, i)
						}
					}
				}
				packs := make([][]complex128, pc)
				for zG := 0; zG < pc; zG++ {
					l := lays[yG][zG]
					packs[zG] = make([]complex128, pc*l.BlockC)
					PencilPackColInvRange(l, packs[zG], bFused[yG][zG], 0, l.My)
				}
				for zG := 0; zG < pc; zG++ {
					l := lays[yG][zG]
					recv := make([]complex128, pc*l.BlockC)
					for s := 0; s < pc; s++ {
						copy(recv[s*l.BlockC:(s+1)*l.BlockC],
							packs[s][zG*l.BlockC:(zG+1)*l.BlockC])
					}
					dst := make([]complex128, l.PadXLen)
					PencilUnpackColInvRange(l, dst, recv, 0, l.My)
					for i := 0; i < l.XSpecLen(); i++ {
						if dst[i] != xspec[yG][zG][i] {
							t.Fatalf("col inv staged (%d,%d) differs at %d", yG, zG, i)
						}
					}
				}
			}
		})
	}
}

func TestNewPencilLayoutValidation(t *testing.T) {
	for _, bad := range []struct{ n, pr, pc, y, z int }{
		{11, 1, 1, 0, 0},  // odd n
		{12, 5, 1, 0, 0},  // pr does not divide n
		{12, 1, 5, 0, 0},  // pc does not divide n
		{12, 2, 12, 0, 0}, // pc > n/2+1... 12 > 7
		{12, 2, 2, 2, 0},  // yRank out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPencilLayout(%+v) did not panic", bad)
				}
			}()
			NewPencilLayout(bad.n, bad.pr, bad.pc, bad.y, bad.z)
		}()
	}
	l := NewPencilLayout(12, 3, 4, 1, 3)
	if l.My != 4 || l.Mz != 3 || l.Mz2 != 4 || l.Nxh != 7 {
		t.Fatalf("layout dims = %+v", l)
	}
	// nxh=7 over pc=4: spans 2,2,2,1; rank z=3 owns the short span.
	if l.Wc != 1 || l.XLo != 6 || l.WcMax != 2 {
		t.Fatalf("x split = Wc %d XLo %d WcMax %d", l.Wc, l.XLo, l.WcMax)
	}
	if l.PadXLen != (4*3*7+3)/4*4 {
		t.Fatalf("PadXLen = %d", l.PadXLen)
	}
}
