package transpose

// Fused transpose-exchange gather kernels: the zero-copy analogue of
// the staged Pack/A2A/Unpack triple. Ranks in the in-process runtime
// share one address space, so the destination-side kernel can perform
// its strided gathers directly from every peer's source slab — the
// software analogue of the paper's §4 zero-copy kernels whose SM
// threads read pinned host memory in place instead of bouncing data
// through staging buffers. One parallel pass replaces three.
//
// srcs[s] is rank s's published source slab (see mpi.ExchangePlan for
// the publication protocol); me is the gathering rank. Each kernel
// writes only the dst elements owned by its outer-index range, so a
// worker team can split a kernel over a partition of that range
// without write conflicts, exactly as with the staged *Range kernels.
//
// The *Peer variants gather one source slab's contribution only; a
// chunked-fused exchange calls them in pairwise-exchange order
// (round k gathers from peer (me+k)%P) so that at any moment each
// source slab is read by a single rank's worker team.

// GatherYZRange gathers y-rows [iyLo,iyHi) of the physical-side slab
// dst=[My][Nz][Nxh] directly from every peer's Fourier-side slab
// srcs[s]=[Mz][Ny][Nxh]. Equivalent to PackYZ on every rank, the
// all-to-all, and UnpackYZRange over the same rows — fused into one
// pass. Distinct iy ranges write disjoint dst elements.
//
//psdns:hotpath
func GatherYZRange[T any](l *SlabLayout, dst []T, srcs [][]T, me, iyLo, iyHi int) {
	for s := 0; s < l.P; s++ {
		GatherYZPeer(l, dst, srcs[s], me, s, iyLo, iyHi)
	}
}

// GatherYZPeer gathers peer s's contribution to y-rows [iyLo,iyHi) of
// the physical-side slab: src is rank s's Fourier-side slab, whose
// z-planes land in dst's z range [s·Mz,(s+1)·Mz).
//
//psdns:hotpath
func GatherYZPeer[T any](l *SlabLayout, dst, src []T, me, s, iyLo, iyHi int) {
	nxh, ny, nz, my, mz := l.Nxh, l.Ny, l.Nz, l.My, l.Mz
	yBase := me * my
	for iz := 0; iz < mz; iz++ {
		srcOff := (iz*ny + yBase + iyLo) * nxh
		dstOff := (iyLo*nz + s*mz + iz) * nxh
		for iy := iyLo; iy < iyHi; iy++ {
			copy(dst[dstOff:dstOff+nxh], src[srcOff:srcOff+nxh])
			srcOff += nxh
			dstOff += nz * nxh
		}
	}
}

// GatherZYRange gathers z-planes [izLo,izHi) of the Fourier-side slab
// dst=[Mz][Ny][Nxh] directly from every peer's physical-side slab
// srcs[s]=[My][Nz][Nxh]. Equivalent to PackZY on every rank, the
// all-to-all, and UnpackZYRange over the same planes. Distinct iz
// ranges write disjoint dst elements.
//
//psdns:hotpath
func GatherZYRange[T any](l *SlabLayout, dst []T, srcs [][]T, me, izLo, izHi int) {
	for s := 0; s < l.P; s++ {
		GatherZYPeer(l, dst, srcs[s], me, s, izLo, izHi)
	}
}

// GatherZYPeer gathers peer s's contribution to z-planes [izLo,izHi)
// of the Fourier-side slab: src is rank s's physical-side slab, whose
// y-rows land in dst's y range [s·My,(s+1)·My).
//
//psdns:hotpath
func GatherZYPeer[T any](l *SlabLayout, dst, src []T, me, s, izLo, izHi int) {
	nxh, ny, nz, my, mz := l.Nxh, l.Ny, l.Nz, l.My, l.Mz
	zBase := me * mz
	for iy := 0; iy < my; iy++ {
		srcOff := (iy*nz + zBase + izLo) * nxh
		dstOff := (izLo*ny + s*my + iy) * nxh
		for iz := izLo; iz < izHi; iz++ {
			copy(dst[dstOff:dstOff+nxh], src[srcOff:srcOff+nxh])
			srcOff += nxh
			dstOff += ny * nxh
		}
	}
}
