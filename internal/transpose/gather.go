package transpose

// Fused transpose-exchange gather kernels: the zero-copy analogue of
// the staged Pack/A2A/Unpack triple. Ranks in the in-process runtime
// share one address space, so the destination-side kernel can perform
// its strided gathers directly from every peer's source slab — the
// software analogue of the paper's §4 zero-copy kernels whose SM
// threads read pinned host memory in place instead of bouncing data
// through staging buffers. One parallel pass replaces three.
//
// srcs[s] is rank s's published source slab (see mpi.ExchangePlan for
// the publication protocol); me is the gathering rank. Each kernel
// writes only the dst elements owned by its outer-index range, so a
// worker team can split a kernel over a partition of that range
// without write conflicts, exactly as with the staged *Range kernels.
//
// The *Peer variants gather one source slab's contribution only; a
// chunked-fused exchange calls them in pairwise-exchange order
// (round k gathers from peer (me+k)%P) so that at any moment each
// source slab is read by a single rank's worker team.

// GatherYZRange gathers y-rows [iyLo,iyHi) of the physical-side slab
// dst=[My][Nz][Nxh] directly from every peer's Fourier-side slab
// srcs[s]=[Mz][Ny][Nxh]. Equivalent to PackYZ on every rank, the
// all-to-all, and UnpackYZRange over the same rows — fused into one
// pass. Distinct iy ranges write disjoint dst elements.
//
//psdns:hotpath
func GatherYZRange[T any](l *SlabLayout, dst []T, srcs [][]T, me, iyLo, iyHi int) {
	for s := 0; s < l.P; s++ {
		GatherYZPeer(l, dst, srcs[s], me, s, iyLo, iyHi)
	}
}

// GatherYZPeer gathers peer s's contribution to y-rows [iyLo,iyHi) of
// the physical-side slab: src is rank s's Fourier-side slab, whose
// z-planes land in dst's z range [s·Mz,(s+1)·Mz).
//
//psdns:hotpath
func GatherYZPeer[T any](l *SlabLayout, dst, src []T, me, s, iyLo, iyHi int) {
	nxh, ny, nz, my, mz := l.Nxh, l.Ny, l.Nz, l.My, l.Mz
	yBase := me * my
	for iz := 0; iz < mz; iz++ {
		srcOff := (iz*ny + yBase + iyLo) * nxh
		dstOff := (iyLo*nz + s*mz + iz) * nxh
		for iy := iyLo; iy < iyHi; iy++ {
			copy(dst[dstOff:dstOff+nxh], src[srcOff:srcOff+nxh])
			srcOff += nxh
			dstOff += nz * nxh
		}
	}
}

// GatherZYRange gathers z-planes [izLo,izHi) of the Fourier-side slab
// dst=[Mz][Ny][Nxh] directly from every peer's physical-side slab
// srcs[s]=[My][Nz][Nxh]. Equivalent to PackZY on every rank, the
// all-to-all, and UnpackZYRange over the same planes. Distinct iz
// ranges write disjoint dst elements.
//
//psdns:hotpath
func GatherZYRange[T any](l *SlabLayout, dst []T, srcs [][]T, me, izLo, izHi int) {
	for s := 0; s < l.P; s++ {
		GatherZYPeer(l, dst, srcs[s], me, s, izLo, izHi)
	}
}

// GatherZYPeer gathers peer s's contribution to z-planes [izLo,izHi)
// of the Fourier-side slab: src is rank s's physical-side slab, whose
// y-rows land in dst's y range [s·My,(s+1)·My).
//
//psdns:hotpath
func GatherZYPeer[T any](l *SlabLayout, dst, src []T, me, s, izLo, izHi int) {
	nxh, ny, nz, my, mz := l.Nxh, l.Ny, l.Nz, l.My, l.Mz
	zBase := me * mz
	for iy := 0; iy < my; iy++ {
		srcOff := (iy*nz + zBase + izLo) * nxh
		dstOff := (izLo*ny + s*my + iy) * nxh
		for iz := izLo; iz < izHi; iz++ {
			copy(dst[dstOff:dstOff+nxh], src[srcOff:srcOff+nxh])
			srcOff += nxh
			dstOff += ny * nxh
		}
	}
}

// --- cache-blocked gather variants ---------------------------------------
//
// The plain peer gathers stream one side contiguously and stride the
// other by a whole row of planes (Nz·Nxh or Ny·Nxh elements). At
// N ≥ 128 that stride exceeds 100 KiB, so every step of the strided
// side touches a fresh cache region: by the time the outer loop wraps
// back, the lines it wrote have been evicted and each inner copy pays
// a miss. The blocked variants tile the outer strided dimension so one
// tile's destination lines stay resident across the whole contiguous
// sweep — the classic blocked-transpose traversal. Element order
// within every copied row is unchanged and the copies are disjoint, so
// blocked and plain gathers are bitwise-identical; only the traversal
// order differs. DefaultGatherTile is chosen from the cmd/stridedcopy
// per-tile sweep (8 rows ≈ 8·Nxh·16 B ≈ 2–16 KiB of resident
// destination per tile, comfortably inside L1/L2 across the swept N).

// DefaultGatherTile is the tile depth (in planes of the strided
// dimension) used by the engines' blocked gathers.
const DefaultGatherTile = 8

// GatherYZRangeBlocked is GatherYZRange with cache-blocked peer
// gathers. Bitwise-identical output; tiled traversal.
//
//psdns:hotpath
func GatherYZRangeBlocked[T any](l *SlabLayout, dst []T, srcs [][]T, me, iyLo, iyHi, tile int) {
	for s := 0; s < l.P; s++ {
		GatherYZPeerBlocked(l, dst, srcs[s], me, s, iyLo, iyHi, tile)
	}
}

// GatherYZPeerBlocked is GatherYZPeer with the iz dimension tiled: for
// each tile of z-planes the iy sweep writes contiguous runs of
// tile·Nxh destination elements (consecutive iz are adjacent in dst)
// while reading source rows that advance contiguously in iy, so both
// sides stay inside a tile-bounded working set instead of striding a
// full Nz·Nxh row per step.
//
//psdns:hotpath
func GatherYZPeerBlocked[T any](l *SlabLayout, dst, src []T, me, s, iyLo, iyHi, tile int) {
	nxh, ny, nz, my, mz := l.Nxh, l.Ny, l.Nz, l.My, l.Mz
	if tile <= 0 {
		tile = mz
	}
	yBase := me * my
	for izLo := 0; izLo < mz; izLo += tile {
		izHi := min(izLo+tile, mz)
		for iy := iyLo; iy < iyHi; iy++ {
			srcOff := (izLo*ny + yBase + iy) * nxh
			dstOff := (iy*nz + s*mz + izLo) * nxh
			for iz := izLo; iz < izHi; iz++ {
				copy(dst[dstOff:dstOff+nxh], src[srcOff:srcOff+nxh])
				srcOff += ny * nxh
				dstOff += nxh
			}
		}
	}
}

// GatherZYRangeBlocked is GatherZYRange with cache-blocked peer
// gathers. Bitwise-identical output; tiled traversal.
//
//psdns:hotpath
func GatherZYRangeBlocked[T any](l *SlabLayout, dst []T, srcs [][]T, me, izLo, izHi, tile int) {
	for s := 0; s < l.P; s++ {
		GatherZYPeerBlocked(l, dst, srcs[s], me, s, izLo, izHi, tile)
	}
}

// GatherZYPeerBlocked is GatherZYPeer with the iy dimension tiled: for
// each tile of y-rows the iz sweep writes contiguous runs of tile·Nxh
// destination elements while the source advances contiguously in iz.
//
//psdns:hotpath
func GatherZYPeerBlocked[T any](l *SlabLayout, dst, src []T, me, s, izLo, izHi, tile int) {
	nxh, ny, nz, my, mz := l.Nxh, l.Ny, l.Nz, l.My, l.Mz
	if tile <= 0 {
		tile = my
	}
	zBase := me * mz
	for iyLo := 0; iyLo < my; iyLo += tile {
		iyHi := min(iyLo+tile, my)
		for iz := izLo; iz < izHi; iz++ {
			srcOff := (iyLo*nz + zBase + iz) * nxh
			dstOff := (iz*ny + s*my + iyLo) * nxh
			for iy := iyLo; iy < iyHi; iy++ {
				copy(dst[dstOff:dstOff+nxh], src[srcOff:srcOff+nxh])
				srcOff += nz * nxh
				dstOff += nxh
			}
		}
	}
}
