package transpose

import "fmt"

// SlabLayout is the precomputed geometry of the slab y↔z transpose:
// every stride, block size and bound the pack/unpack kernels need,
// derived once at plan time instead of on every call. Plans (pfft,
// core) hold one SlabLayout and the per-call kernels reduce to pure
// copy loops; the *Range variants additionally restrict the outer loop
// to a sub-interval of destination-disjoint indices so a worker team
// can split one kernel across workers without write conflicts.
//
// Geometry (see the package comment): Fourier side [Mz][Ny][Nxh],
// physical side [My][Nz][Nxh], with My = Ny/P and Nz = Mz·P.
type SlabLayout struct {
	Nxh, Ny, Nz int
	My, Mz      int
	P           int
	Block       int // elements per per-rank block: Mz·My·Nxh
	Total       int // elements per slab: Mz·Ny·Nxh = My·Nz·Nxh
}

// NewSlabLayout derives the slab transpose geometry for a Fourier-side
// slab of shape [mz][ny][nxh] split across p ranks. ny must be
// divisible by p.
func NewSlabLayout(nxh, ny, mz, p int) SlabLayout {
	if p < 1 || ny%p != 0 {
		panic(fmt.Sprintf("transpose: ny=%d not divisible by p=%d", ny, p))
	}
	my := ny / p
	return SlabLayout{
		Nxh: nxh, Ny: ny, Nz: mz * p,
		My: my, Mz: mz, P: p,
		Block: mz * my * nxh,
		Total: mz * ny * nxh,
	}
}

func (l *SlabLayout) check(op string, dst, src int) {
	if dst < l.Total || src < l.Total {
		panic(fmt.Sprintf("transpose: %s needs %d elements, got dst %d src %d", op, l.Total, dst, src))
	}
}

// PackYZRange packs z-planes [izLo,izHi) of the Fourier-side slab into
// all p destination blocks. Distinct iz ranges write disjoint dst
// elements, so concurrent calls over a partition of [0,Mz) are safe.
//
//psdns:hotpath
func PackYZRange[T any](l *SlabLayout, dst, src []T, izLo, izHi int) {
	nxh, ny, my, bs := l.Nxh, l.Ny, l.My, l.Block
	for d := 0; d < l.P; d++ {
		blk := dst[d*bs : (d+1)*bs]
		for iz := izLo; iz < izHi; iz++ {
			for iy := 0; iy < my; iy++ {
				srcOff := (iz*ny + d*my + iy) * nxh
				dstOff := (iz*my + iy) * nxh
				copy(blk[dstOff:dstOff+nxh], src[srcOff:srcOff+nxh])
			}
		}
	}
}

// UnpackYZRange scatters received blocks into y-rows [iyLo,iyHi) of the
// physical-side slab. Distinct iy ranges write disjoint dst elements.
//
//psdns:hotpath
func UnpackYZRange[T any](l *SlabLayout, dst, src []T, iyLo, iyHi int) {
	nxh, nz, my, mz, bs := l.Nxh, l.Nz, l.My, l.Mz, l.Block
	for s := 0; s < l.P; s++ {
		blk := src[s*bs : (s+1)*bs]
		for iz := 0; iz < mz; iz++ {
			for iy := iyLo; iy < iyHi; iy++ {
				srcOff := (iz*my + iy) * nxh
				dstOff := (iy*nz + s*mz + iz) * nxh
				copy(dst[dstOff:dstOff+nxh], blk[srcOff:srcOff+nxh])
			}
		}
	}
}

// PackZYRange packs y-rows [iyLo,iyHi) of the physical-side slab into
// all p destination blocks. Distinct iy ranges write disjoint dst
// elements.
//
//psdns:hotpath
func PackZYRange[T any](l *SlabLayout, dst, src []T, iyLo, iyHi int) {
	nxh, nz, mz, bs := l.Nxh, l.Nz, l.Mz, l.Block
	for d := 0; d < l.P; d++ {
		blk := dst[d*bs : (d+1)*bs]
		for iy := iyLo; iy < iyHi; iy++ {
			for iz := 0; iz < mz; iz++ {
				srcOff := (iy*nz + d*mz + iz) * nxh
				dstOff := (iy*mz + iz) * nxh
				copy(blk[dstOff:dstOff+nxh], src[srcOff:srcOff+nxh])
			}
		}
	}
}

// UnpackZYRange scatters received blocks into z-planes [izLo,izHi) of
// the Fourier-side slab. Distinct iz ranges write disjoint dst
// elements.
//
//psdns:hotpath
func UnpackZYRange[T any](l *SlabLayout, dst, src []T, izLo, izHi int) {
	nxh, ny, my, mz, bs := l.Nxh, l.Ny, l.My, l.Mz, l.Block
	for s := 0; s < l.P; s++ {
		blk := src[s*bs : (s+1)*bs]
		for iy := 0; iy < my; iy++ {
			for iz := izLo; iz < izHi; iz++ {
				srcOff := (iy*mz + iz) * nxh
				dstOff := (iz*ny + s*my + iy) * nxh
				copy(dst[dstOff:dstOff+nxh], blk[srcOff:srcOff+nxh])
			}
		}
	}
}

// PackYZPencilInto is PackYZPencil writing the per-destination counts
// into the caller-provided slice (length ≥ p) instead of allocating —
// the steady-state form for the async engine's per-pencil exchanges.
func PackYZPencilInto[T any](counts []int, dst, src []T, nxh, ny, mz, p, yLo, yHi int) {
	my := ny / p
	off := 0
	for d := 0; d < p; d++ {
		counts[d] = 0
		lo := max(yLo, d*my)
		hi := min(yHi, (d+1)*my)
		if lo >= hi {
			continue
		}
		for iz := 0; iz < mz; iz++ {
			for iy := lo; iy < hi; iy++ {
				srcOff := (iz*ny + iy) * nxh
				copy(dst[off:off+nxh], src[srcOff:srcOff+nxh])
				off += nxh
			}
		}
		counts[d] = mz * (hi - lo) * nxh
	}
}
