package hw

// What-if transforms of the machine description, for the §6-style
// questions the paper closes with ("further gains in performance will
// depend on ... hardware innovations that improve the performance of
// the all-to-all communication"): scale one subsystem and rerun the
// step-time model.

// WithNetworkScale returns a copy of the machine with every network
// bandwidth multiplied by f (injection and per-socket NIC).
func (m Machine) WithNetworkScale(f float64) Machine {
	m2 := m
	m2.NodeInjectionBW *= f
	m2.NICPerSocket *= f
	return m2
}

// WithGPUScale returns a copy with the GPU compute rates multiplied by
// f (the "faster GPUs can at best approach the MPI-only line" argument
// of Fig 9).
func (m Machine) WithGPUScale(f float64) Machine {
	m2 := m
	m2.GPUFFTRate *= f
	m2.GPUPackRate *= f
	return m2
}

// WithTransferScale returns a copy with the host↔device path scaled by
// f (NVLink + host memory).
func (m Machine) WithTransferScale(f float64) Machine {
	m2 := m
	m2.HostXferRate *= f
	m2.NVLinkPerSocket *= f
	m2.CPUMemBWPerSocket *= f
	return m2
}

// WithHostMemory returns a copy with a different per-node DDR capacity
// (the dense-node premise of §3.1: big host memory is what allows the
// 1D decomposition).
func (m Machine) WithHostMemory(bytes float64) Machine {
	m2 := m
	m2.HostMemory = bytes
	return m2
}
