// Package hw describes the target hardware of the paper — the IBM
// AC922 nodes of Summit — and implements the §3.5 memory model that
// determines feasible node counts and the number of GPU-batched
// pencils per slab (Table 1 of the paper).
package hw

import (
	"fmt"
	"math"
)

const (
	// GiB is the binary gigabyte the paper's Table 1 is expressed in.
	GiB = 1 << 30
	// GB is the decimal gigabyte used for bandwidths.
	GB = 1e9
)

// Machine captures the node architecture parameters of §3.2 plus the
// calibrated software throughputs the performance model needs.
type Machine struct {
	Name string

	TotalNodes     int
	SocketsPerNode int
	GPUsPerSocket  int
	CoresPerSocket int
	UsableCores    int // cores usable per node for compute (paper: 42, ≤32 used for divisibility)

	// Memory capacities (bytes).
	HostMemory   float64 // DDR per node
	OSReserve    float64 // consumed by the operating system
	GPUMemory    float64 // HBM per GPU
	GPUUsableMem float64 // user-accessible HBM per node

	// Bandwidths (bytes/s).
	CPUMemBWPerSocket float64 // peak unidirectional
	NVLinkPerSocket   float64 // CPU↔GPU aggregate per socket
	NICPerSocket      float64 // bi-directional per socket
	NodeInjectionBW   float64 // dual-rail EDR injection per node

	SMsPerGPU int

	// Calibrated effective software throughputs (bytes/s of data
	// processed), set so the 3072³/16-node row of Table 3 matches;
	// everything else is prediction.
	GPUFFTRate   float64 // one 1-D transform pass over a buffer, per GPU
	CPUFFTRate   float64 // same, per node, synchronous CPU code
	GPUPackRate  float64 // strided pack/unpack kernels, per GPU
	HostXferRate float64 // effective H2D/D2H rate per node (NVLink vs host memory)
	CPUPackRate  float64 // host-side pack for the CPU baseline, per node
	MemModelD    float64 // variables-equivalents resident per grid point (§3.5 text: ≈25)
	MemTableD    float64 // Table 1's memory-occupancy factor (solution + pinned buffers)
	GPUBufFactor float64 // pencil-sized GPU buffers needed with async tripling (§3.5: 27)
	PencilSlack  float64 // extra pencils beyond nominal for auxiliary arrays
}

// Summit returns the machine description of ORNL Summit as reported in
// the paper (§3.2, §4.1) with calibrated software rates.
func Summit() Machine {
	return Machine{
		Name:              "Summit (IBM AC922)",
		TotalNodes:        4608,
		SocketsPerNode:    2,
		GPUsPerSocket:     3,
		CoresPerSocket:    22,
		UsableCores:       42,
		HostMemory:        512 * GiB,
		OSReserve:         64 * GiB,
		GPUMemory:         16 * GB,
		GPUUsableMem:      96 * GiB,
		CPUMemBWPerSocket: 135 * GB,
		NVLinkPerSocket:   150 * GB,
		NICPerSocket:      12.5 * GB,
		NodeInjectionBW:   23 * GB,
		SMsPerGPU:         80,

		GPUFFTRate:   220 * GB, // effective cuFFT pass rate per V100
		CPUFFTRate:   10 * GB,  // per node, 32 cores (≈80 GF/s effective)
		GPUPackRate:  250 * GB,
		HostXferRate: 200 * GB, // effective, limited by host memory (< 2×135)
		CPUPackRate:  60 * GB,

		MemModelD:    25,
		MemTableD:    30,
		GPUBufFactor: 27,
		PencilSlack:  2,
	}
}

// HostUsable is the host memory available to user codes per node.
func (m Machine) HostUsable() float64 { return m.HostMemory - m.OSReserve }

// GPUsPerNode is the total device count per node.
func (m Machine) GPUsPerNode() int { return m.SocketsPerNode * m.GPUsPerSocket }

// MemPerNode returns the §3.5 memory footprint 4·D·N³/M bytes for an
// N³ single-precision problem on M nodes, using the Table 1 occupancy
// factor.
func (m Machine) MemPerNode(n, nodes int) float64 {
	return 4 * m.MemTableD * cube(n) / float64(nodes)
}

// MinNodes returns the smallest node count whose host memory holds the
// D≈25 solution variables of an N³ problem (the paper's M=1302 for
// N=18432).
func (m Machine) MinNodes(n int) int {
	return int(math.Ceil(4 * m.MemModelD * cube(n) / m.HostUsable()))
}

// ValidNodeCounts lists node counts M ≥ MinNodes(N) that load-balance:
// M divides N and both candidate rank layouts (2 and 6 tasks per node)
// give rank counts that divide N and do not exceed N. For N=18432 this
// yields exactly {1536, 3072}, as §3.5 concludes.
func (m Machine) ValidNodeCounts(n int) []int {
	var out []int
	minN := m.MinNodes(n)
	for nodes := 1; nodes <= m.TotalNodes; nodes++ {
		if nodes < minN || n%nodes != 0 {
			continue
		}
		ok := true
		for _, tpn := range []int{2, 6} {
			p := tpn * nodes
			if p > n || n%p != 0 {
				ok = false
			}
		}
		if ok {
			out = append(out, nodes)
		}
	}
	return out
}

// NominalPencils is the §3.5 estimate 4·27·N³/(M·np·GPUmem) solved for
// np: the fractional number of pencils per slab needed for the 27
// asynchronous compute buffers to fit in the node's GPU memory.
func (m Machine) NominalPencils(n, nodes int) float64 {
	return 4 * m.GPUBufFactor * cube(n) / (float64(nodes) * m.GPUUsableMem)
}

// PencilsPerSlab is the practical pencil count: the nominal estimate
// rounded down plus PencilSlack pencils' worth of headroom for the
// auxiliary arrays §3.5 mentions (reproducing Table 1: 3,3,3,4).
func (m Machine) PencilsPerSlab(n, nodes int) int {
	return int(math.Floor(m.NominalPencils(n, nodes))) + int(m.PencilSlack)
}

// PencilBytes is the size of one pencil of one variable in bytes,
// 4·N³/(M·np).
func (m Machine) PencilBytes(n, nodes, np int) float64 {
	return 4 * cube(n) / float64(nodes*np)
}

// Table1Row reproduces one row of the paper's Table 1.
type Table1Row struct {
	Nodes      int
	N          int
	MemPerNode float64 // GiB
	Pencils    int
	PencilSize float64 // GiB
}

// Table1 regenerates the paper's Table 1 for the standard sweep.
func (m Machine) Table1() []Table1Row {
	cases := []struct{ nodes, n int }{
		{16, 3072}, {128, 6144}, {1024, 12288}, {3072, 18432},
	}
	rows := make([]Table1Row, 0, len(cases))
	for _, c := range cases {
		np := m.PencilsPerSlab(c.n, c.nodes)
		rows = append(rows, Table1Row{
			Nodes:      c.nodes,
			N:          c.n,
			MemPerNode: m.MemPerNode(c.n, c.nodes) / GiB,
			Pencils:    np,
			PencilSize: m.PencilBytes(c.n, c.nodes, np) / GiB,
		})
	}
	return rows
}

// CheckFit verifies that an N³ problem on M nodes with np pencils fits
// both host and GPU memory, returning a descriptive error otherwise.
func (m Machine) CheckFit(n, nodes, np int) error {
	if host := m.MemPerNode(n, nodes); host > m.HostUsable() {
		return fmt.Errorf("hw: N=%d on %d nodes needs %.1f GiB host memory, have %.1f",
			n, nodes, host/GiB, m.HostUsable()/GiB)
	}
	gpu := m.GPUBufFactor * m.PencilBytes(n, nodes, np)
	if gpu > m.GPUUsableMem {
		return fmt.Errorf("hw: N=%d on %d nodes with %d pencils needs %.1f GiB GPU memory, have %.1f",
			n, nodes, np, gpu/GiB, m.GPUUsableMem/GiB)
	}
	return nil
}

func cube(n int) float64 { f := float64(n); return f * f * f }
