package hw

import (
	"fmt"
	"runtime"
)

// Fingerprint identifies the executing machine for persisted tuning
// decisions: a tuning-cache entry recorded on one machine must never be
// replayed on a different one, where the autotuner's trial timings (and
// so its winner) could differ. The fingerprint deliberately captures
// only what the in-process runtime's trials can actually be sensitive
// to — instruction set, operating system and core count — so a cache
// survives process restarts on the same machine but misses after a
// hardware change.
func Fingerprint() string {
	return fmt.Sprintf("%s-%s-c%d", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}
