package hw

import (
	"math"
	"testing"
)

func TestTable1ReproducesPaper(t *testing.T) {
	m := Summit()
	want := []Table1Row{
		{Nodes: 16, N: 3072, MemPerNode: 202.5, Pencils: 3, PencilSize: 2.25},
		{Nodes: 128, N: 6144, MemPerNode: 202.5, Pencils: 3, PencilSize: 2.25},
		{Nodes: 1024, N: 12288, MemPerNode: 202.5, Pencils: 3, PencilSize: 2.25},
		{Nodes: 3072, N: 18432, MemPerNode: 227.8, Pencils: 4, PencilSize: 1.90},
	}
	got := m.Table1()
	if len(got) != len(want) {
		t.Fatalf("rows %d", len(got))
	}
	for i, w := range want {
		g := got[i]
		if g.Nodes != w.Nodes || g.N != w.N || g.Pencils != w.Pencils {
			t.Errorf("row %d: got %+v want %+v", i, g, w)
		}
		if math.Abs(g.MemPerNode-w.MemPerNode) > 0.5 {
			t.Errorf("row %d: mem %.1f want %.1f", i, g.MemPerNode, w.MemPerNode)
		}
		if math.Abs(g.PencilSize-w.PencilSize) > 0.01 {
			t.Errorf("row %d: pencil %.2f want %.2f", i, g.PencilSize, w.PencilSize)
		}
	}
}

func TestMinNodesMatchesPaper(t *testing.T) {
	// §3.5: equating 4·25·18432³/M to 448 GB gives M = 1302.
	m := Summit()
	got := m.MinNodes(18432)
	if got < 1300 || got > 1304 {
		t.Errorf("MinNodes(18432) = %d, paper says 1302", got)
	}
}

func TestValidNodeCounts18432(t *testing.T) {
	// §3.5: "the only 2 possible values of M are thus 1536 and 3072".
	m := Summit()
	got := m.ValidNodeCounts(18432)
	if len(got) != 2 || got[0] != 1536 || got[1] != 3072 {
		t.Errorf("ValidNodeCounts(18432) = %v, want [1536 3072]", got)
	}
}

func TestNominalPencils18432(t *testing.T) {
	// §3.5: "np = 2.13" nominally for 18432³ on 3072 nodes.
	m := Summit()
	np := m.NominalPencils(18432, 3072)
	if math.Abs(np-2.13) > 0.02 {
		t.Errorf("nominal np = %.3f, paper says 2.13", np)
	}
}

func TestCheckFit(t *testing.T) {
	m := Summit()
	if err := m.CheckFit(18432, 3072, 4); err != nil {
		t.Errorf("paper configuration rejected: %v", err)
	}
	if err := m.CheckFit(18432, 512, 4); err == nil {
		t.Error("512 nodes cannot hold 18432³ in host memory")
	}
	if err := m.CheckFit(18432, 3072, 1); err == nil {
		t.Error("np=1 cannot fit in GPU memory")
	}
}

func TestGeometryAccessors(t *testing.T) {
	m := Summit()
	if m.GPUsPerNode() != 6 {
		t.Errorf("GPUs per node %d", m.GPUsPerNode())
	}
	if m.HostUsable() != 448*GiB {
		t.Errorf("host usable %g", m.HostUsable()/GiB)
	}
}

func TestWeakScalingMemoryConstant(t *testing.T) {
	// 3072³→12288³ are exact weak scalings: memory per node identical.
	m := Summit()
	base := m.MemPerNode(3072, 16)
	if math.Abs(m.MemPerNode(6144, 128)-base) > 1 {
		t.Error("6144³/128 not weak-scaled")
	}
	if math.Abs(m.MemPerNode(12288, 1024)-base) > 1 {
		t.Error("12288³/1024 not weak-scaled")
	}
	// 18432³/3072 is larger than weak scaling suggests (§3.5, Table 1).
	if m.MemPerNode(18432, 3072) <= base {
		t.Error("18432³/3072 should exceed the weak-scaled footprint")
	}
}
