package pool

import (
	"sync"
	"testing"
)

func TestClassRouting(t *testing.T) {
	cases := []struct{ n, class int }{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2}, {1024, 4}, {1025, 5},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
	if classSize(0) != 64 || classSize(3) != 512 {
		t.Fatalf("classSize wrong: %d %d", classSize(0), classSize(3))
	}
}

func TestReuseSameBacking(t *testing.T) {
	var a Arena
	b1 := a.GetComplex(100)
	if len(b1) != 100 || cap(b1) != 128 {
		t.Fatalf("len/cap = %d/%d", len(b1), cap(b1))
	}
	b1[0] = 7
	a.PutComplex(b1)
	b2 := a.GetComplex(120) // same class (128): must reuse b1's backing
	if len(b2) != 120 {
		t.Fatalf("len = %d", len(b2))
	}
	if &b1[0] != &b2[0] {
		t.Fatal("expected recycled backing array")
	}
}

func TestGetSmallerThanStored(t *testing.T) {
	var a Arena
	b1 := a.GetFloat(128)
	a.PutFloat(b1)
	// A 65-element request routes to the 128 class and must be served
	// by the stored buffer.
	b2 := a.GetFloat(65)
	if cap(b2) < 65 {
		t.Fatalf("cap %d too small", cap(b2))
	}
	if &b1[0] != &b2[0] {
		t.Fatal("expected recycled backing array")
	}
}

func TestHitMissCounters(t *testing.T) {
	var a Arena
	h0, m0 := Stats()
	b := a.GetComplex64(256) // miss
	a.PutComplex64(b)
	a.GetComplex64(256) // hit
	h1, m1 := Stats()
	if h1-h0 < 1 {
		t.Errorf("expected ≥1 hit, got %d", h1-h0)
	}
	if m1-m0 < 1 {
		t.Errorf("expected ≥1 miss, got %d", m1-m0)
	}
}

func TestZeroLengthAndOversize(t *testing.T) {
	var a Arena
	if b := a.GetComplex(0); b != nil {
		t.Fatal("zero-length get should be nil")
	}
	a.PutComplex(make([]complex128, 10)) // below min class: dropped, no panic
}

func TestRetentionBound(t *testing.T) {
	var a Arena
	for i := 0; i < 3*maxPerClass; i++ {
		a.PutFloat(make([]float64, 64))
	}
	a.f64.mu.Lock()
	n := len(a.f64.classes[0])
	a.f64.mu.Unlock()
	if n > maxPerClass {
		t.Fatalf("class retained %d > %d", n, maxPerClass)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	var a Arena
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := 64 + (seed*131+i*17)%4000
				b := a.GetComplex(n)
				b[0], b[n-1] = 1, 2
				a.PutComplex(b)
				f := a.GetFloat(n)
				f[n-1] = 3
				a.PutFloat(f)
			}
		}(g)
	}
	wg.Wait()
}

func TestSteadyStateGetPutAllocFree(t *testing.T) {
	var a Arena
	// Warm the class, then Get/Put must not allocate.
	a.PutComplex(a.GetComplex(1 << 12))
	avg := testing.AllocsPerRun(200, func() {
		b := a.GetComplex(1 << 12)
		a.PutComplex(b)
	})
	if avg != 0 {
		t.Fatalf("steady-state Get/Put allocates %.2f per run", avg)
	}
}
