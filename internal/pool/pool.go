// Package pool is the per-process buffer arena of the hot path:
// size-classed freelists of []complex128, []float64 and []complex64
// slices that the transform engines (internal/fft plans, the transpose
// pack/unpack staging, the pfft and core pipeline buffers) check out at
// plan time and recycle across cycles instead of allocating afresh.
//
// The paper's code never allocates inside a time step — every pencil,
// staging and wire buffer is carved out of arenas sized at start-up
// (§3.5 triple-buffering). This package is the software analogue for
// the Go port: steady-state transform and step execution performs zero
// heap allocations because every transient buffer comes from (and
// returns to) a freelist.
//
// Buffers are grouped in power-of-two size classes. Get returns a
// slice of exactly the requested length backed by a class-sized
// capacity; the memory is NOT zeroed — callers are expected to
// overwrite it fully, as every pack/transform kernel in this codebase
// does. Put recycles a slice; per-class retention is bounded so a
// burst cannot pin memory forever.
//
// Hits and misses accumulate in package atomics (the same pattern as
// internal/fft's counters) and PublishMetrics copies them into a
// registry as pool.hit / pool.miss, so buffer-reuse efficiency is
// observable rather than asserted.
package pool

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// maxPerClass bounds how many free buffers one size class retains;
// beyond it Put drops the buffer for the GC to take.
const maxPerClass = 64

// minClassBits is the smallest class (2^6 = 64 elements); requests
// below it share the 64-element class so tiny scratch lines still
// recycle.
const minClassBits = 6

// nClasses covers lengths up to 2^34 elements, far beyond any slab.
const nClasses = 35 - minClassBits

var (
	hits   atomic.Int64 // Gets served from a freelist
	misses atomic.Int64 // Gets that fell through to make
)

// classFor returns the class index whose buffers have capacity
// ≥ n, i.e. the ceiling power-of-two class.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClassBits
	if c >= nClasses {
		return -1 // oversize: unpooled
	}
	return c
}

// classSize is the capacity of buffers in class c.
func classSize(c int) int { return 1 << (c + minClassBits) }

// freelist is one element type's set of size-classed stacks.
type freelist[T any] struct {
	mu      sync.Mutex
	classes [nClasses][][]T
}

func (f *freelist[T]) get(n int) []T {
	if n == 0 {
		return nil
	}
	c := classFor(n)
	if c >= 0 {
		f.mu.Lock()
		if s := f.classes[c]; len(s) > 0 {
			buf := s[len(s)-1]
			s[len(s)-1] = nil
			f.classes[c] = s[:len(s)-1]
			f.mu.Unlock()
			hits.Add(1)
			return buf[:n]
		}
		f.mu.Unlock()
	}
	misses.Add(1)
	if c >= 0 {
		return make([]T, n, classSize(c))
	}
	return make([]T, n)
}

func (f *freelist[T]) put(buf []T) {
	// File by the largest class the capacity fully covers, so a
	// recycled buffer always satisfies any request routed to its class.
	cp := cap(buf)
	if cp < 1<<minClassBits {
		return
	}
	c := bits.Len(uint(cp)) - 1 - minClassBits // floor class
	if c < 0 {
		return
	}
	if c >= nClasses {
		c = nClasses - 1
	}
	f.mu.Lock()
	if len(f.classes[c]) < maxPerClass {
		f.classes[c] = append(f.classes[c], buf[:0])
	}
	f.mu.Unlock()
}

// Arena is one set of freelists. The zero value is ready to use; all
// methods are safe for concurrent use by any number of rank and worker
// goroutines.
type Arena struct {
	c128 freelist[complex128]
	f64  freelist[float64]
	c64  freelist[complex64]
}

// GetComplex checks out a []complex128 of length n (uninitialized).
func (a *Arena) GetComplex(n int) []complex128 { return a.c128.get(n) }

// PutComplex recycles a buffer obtained from GetComplex.
func (a *Arena) PutComplex(buf []complex128) { a.c128.put(buf) }

// GetFloat checks out a []float64 of length n (uninitialized).
func (a *Arena) GetFloat(n int) []float64 { return a.f64.get(n) }

// PutFloat recycles a buffer obtained from GetFloat.
func (a *Arena) PutFloat(buf []float64) { a.f64.put(buf) }

// GetComplex64 checks out a []complex64 of length n (uninitialized) —
// the single-precision wire-staging element type.
func (a *Arena) GetComplex64(n int) []complex64 { return a.c64.get(n) }

// PutComplex64 recycles a buffer obtained from GetComplex64.
func (a *Arena) PutComplex64(buf []complex64) { a.c64.put(buf) }

// def is the process-wide arena every engine shares; in-process MPI
// ranks are goroutines, so one arena serves all of them and a buffer
// released by one rank can be reused by another.
var def Arena

// Default returns the process-wide arena.
func Default() *Arena { return &def }

// GetComplex checks a []complex128 of length n out of the default arena.
func GetComplex(n int) []complex128 { return def.GetComplex(n) }

// PutComplex recycles buf into the default arena.
func PutComplex(buf []complex128) { def.PutComplex(buf) }

// GetFloat checks a []float64 of length n out of the default arena.
func GetFloat(n int) []float64 { return def.GetFloat(n) }

// PutFloat recycles buf into the default arena.
func PutFloat(buf []float64) { def.PutFloat(buf) }

// GetComplex64 checks a []complex64 of length n out of the default arena.
func GetComplex64(n int) []complex64 { return def.GetComplex64(n) }

// PutComplex64 recycles buf into the default arena.
func PutComplex64(buf []complex64) { def.PutComplex64(buf) }

// Stats reports the cumulative hit/miss totals.
func Stats() (hit, miss int64) { return hits.Load(), misses.Load() }

// PublishMetrics copies the package totals into reg as the pool.hit
// and pool.miss counters. Repeated calls overwrite, so the published
// values stay cumulative (same convention as fft.PublishMetrics).
func PublishMetrics(reg *metrics.Registry) {
	reg.Counter("pool.hit").Store(hits.Load())
	reg.Counter("pool.miss").Store(misses.Load())
}
