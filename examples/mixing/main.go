// Passive-scalar mixing: a scalar field with an imposed mean gradient
// is stirred by forced isotropic turbulence — the turbulent-mixing
// companion workload of the paper's research group (§3.3's reference
// to GPU-accelerated high-Schmidt-number mixing). Demonstrates the
// coupled velocity+scalar RK2 step, scalar statistics, and
// checkpoint/restart mid-campaign.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/mpi"
	"repro/internal/spectral"
)

func main() {
	const (
		n     = 32
		ranks = 4
		nu    = 0.01
		sc    = 1.0 // Schmidt number ν/κ
		dt    = 0.004
	)
	dir, err := os.MkdirTemp("", "mixing-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Printf("passive-scalar mixing: %d³, ν=%g, Sc=%g, mean gradient G=1\n\n", n, nu, sc)

	mpi.Run(ranks, func(c *mpi.Comm) {
		opts := []spectral.Option{
			spectral.WithNu(nu),
			spectral.WithScheme(spectral.RK2),
			spectral.WithDealias(spectral.Dealias23),
			spectral.WithForcing(2, 0.1),
		}
		s := spectral.New(c, n, opts...)
		defer s.Close()
		s.SetRandomIsotropic(2.5, 0.6, 31)
		th := s.NewScalar(nu / sc)
		th.MeanGrad = 1.0

		root := c.Rank() == 0
		report := func(tag string) {
			v := s.ScalarVariance(th)
			chi := s.ScalarDissipation(th)
			e := s.Energy()
			if root {
				fmt.Printf("%-18s t=%.3f  E=%.4f  ⟨θ²⟩=%.5f  χ=%.5f\n", tag, s.Time(), e, v, chi)
			}
		}

		report("start")
		for i := 0; i < 20; i++ {
			s.StepWithScalar(th, dt)
		}
		report("after 20 steps")

		// Mid-campaign checkpoint, as a production run would do before
		// its allocation ends.
		if err := s.SaveCheckpoint(dir, th); err != nil {
			log.Fatalf("rank %d: checkpoint: %v", c.Rank(), err)
		}
		if root {
			fmt.Printf("\ncheckpoint written to %s (one file per rank)\n", dir)
		}

		// "Next job": fresh solver objects restored from disk.
		s2 := spectral.New(c, n, opts...)
		defer s2.Close()
		th2 := s2.NewScalar(0)
		if err := s2.LoadCheckpoint(dir, th2); err != nil {
			log.Fatalf("rank %d: restart: %v", c.Rank(), err)
		}
		if root {
			fmt.Printf("restarted at step %d, t=%.3f\n\n", s2.StepCount(), s2.Time())
		}
		for i := 0; i < 20; i++ {
			s2.StepWithScalar(th2, dt)
		}
		v := s2.ScalarVariance(th2)
		chi := s2.ScalarDissipation(th2)
		if root {
			fmt.Printf("%-18s t=%.3f  ⟨θ²⟩=%.5f  χ=%.5f\n", "after restart+20", s2.Time(), v, chi)
		}

		// Scalar spectrum at the end.
		spec := s2.ScalarSpectrum(th2)
		if root {
			fmt.Println("\nscalar spectrum E_θ(k):")
			for k := 1; k <= n/3; k += 1 {
				fmt.Printf("  k=%2d  %.4e\n", k, spec[k])
			}
			fmt.Println("\n(the mean-gradient production −G·u_y sustains scalar fluctuations")
			fmt.Println(" against diffusive destruction χ — statistically stationary mixing)")
		}
	})
}
