// Quickstart: a distributed 3D FFT and one Navier–Stokes RK2 step in
// ~40 lines. Ranks are goroutines, so this runs anywhere Go runs.
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/spectral"
)

func main() {
	const n = 32    // grid points per direction
	const ranks = 4 // "MPI" ranks, in-process

	mpi.Run(ranks, func(c *mpi.Comm) {
		// The paper's batched asynchronous transform engine: each
		// rank's slab cycles through "GPU" memory in 4 pencils, with a
		// non-blocking all-to-all per pencil.
		tr := core.NewAsyncSlabReal(c, n, core.Options{
			NP:          4,
			Granularity: core.PerPencil,
		})
		defer tr.Close()

		// A full pseudo-spectral Navier–Stokes solver on top of it.
		solver := spectral.New(c, n,
			spectral.WithNu(0.02),
			spectral.WithScheme(spectral.RK2),
			spectral.WithDealias(spectral.Dealias23),
			spectral.WithTransform(tr),
		)
		defer solver.Close()

		solver.SetTaylorGreen()
		e0 := solver.Energy()
		for i := 0; i < 5; i++ {
			solver.Step(0.01)
		}
		e1 := solver.Energy()
		div := solver.DivergenceMax()

		if c.Rank() == 0 {
			fmt.Printf("Taylor–Green vortex, %d³ grid on %d ranks\n", n, ranks)
			fmt.Printf("energy: %.6f → %.6f after 5 RK2 steps (viscous decay)\n", e0, e1)
			fmt.Printf("mass conservation: max|k·û| = %.2e\n", div)
			if e1 >= e0 || div > 1e-10 || math.IsNaN(e1) {
				fmt.Println("UNEXPECTED: check the installation")
			} else {
				fmt.Println("OK")
			}
		}
	})
}
