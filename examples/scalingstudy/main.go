// Scaling study on the Summit machine model: sweeps the paper's four
// problem sizes across MPI configurations, prints the predicted time
// per step, weak scaling, and a normalized timeline, and demonstrates
// the memory model that picks node counts and pencil counts (§3.5).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/simnet"
	"repro/internal/spectral"
	"repro/internal/trace"
)

func main() {
	m := hw.Summit()
	fmt.Println("=== §3.5 memory model ===")
	for _, n := range []int{3072, 6144, 12288, 18432} {
		fmt.Printf("N=%-6d min nodes %-5d valid node counts %v\n",
			n, m.MinNodes(n), m.ValidNodeCounts(n))
	}

	fmt.Println("\n=== predicted time per RK2 step (s) ===")
	fmt.Print(core.FormatTable3(core.Table3()))

	fmt.Println("\n=== weak scaling (Eq 4) ===")
	fmt.Print(core.FormatTable4(core.Table4()))

	fmt.Println("\n=== where the time goes at 18432³ on 3072 nodes (cfg C) ===")
	res := core.SimulateGPUStep(core.DefaultPerf(18432, 3072, 2, core.PerSlab))
	fmt.Printf("time/step %.2f s, MPI share %.0f%%\n", res.Time, 100*core.MPITimeShare(res))
	fmt.Print(trace.Render(trace.Timeline{
		Title: "18432³ / 3072 nodes / 2 tasks per node / 1 slab per A2A",
		Spans: res.Spans,
	}, 110))
	fmt.Print(trace.ClassSummary(res.Spans))

	fmt.Println("\n=== what-if: hardware levers at 18432³/3072 nodes (§6) ===")
	base := core.DefaultPerf(18432, 3072, 2, core.PerSlab)
	baseT := core.SimulateGPUStep(base).Time
	gpu2 := base
	gpu2.Machine = gpu2.Machine.WithGPUScale(2).WithTransferScale(2)
	net2 := base
	net2.Net = simnet.ScaledSummitA2A(2)
	fmt.Printf("baseline            %.2f s/step\n", baseT)
	fmt.Printf("2× GPU + NVLink     %.2f s/step\n", core.SimulateGPUStep(gpu2).Time)
	fmt.Printf("2× interconnect     %.2f s/step\n", core.SimulateGPUStep(net2).Time)
	fmt.Println("(the interconnect is the lever — the paper's closing argument)")

	fmt.Println("\n=== equation-set cost (transform volumes per step, from the registry) ===")
	// The transform pipeline is the step's cost: each RHS evaluation
	// moves 3 inverse + 6 forward volumes for the velocity and 1
	// inverse + 3 forward per extra field (the flux products reuse the
	// velocity's physical-space scratch). RK2 evaluates the RHS twice.
	spec := spectral.SystemSpec{
		Nu:      1e-4,
		Forcing: spectral.ForcingSpec{KF: 2, Eps: 0.1},
		Scalars: []spectral.ScalarSpec{{Schmidt: 1}, {Schmidt: 0.7}},
		Omega:   1,
	}
	baseRes := core.SimulateGPUStep(core.DefaultPerf(18432, 3072, 2, core.PerSlab))
	fmt.Printf("%-16s %6s %18s %14s %22s\n", "system", "fields", "volumes/RHS", "rel. cost", "18432³ est. s/step")
	for _, name := range spectral.Systems() {
		sys, err := spectral.NewNamedSystem(name, spec)
		if err != nil {
			log.Fatal(err)
		}
		nf := sys.Fields()
		vols := 9 + 4*(nf-3)
		rel := float64(vols) / 9
		fmt.Printf("%-16s %6d %14d (%d+%d) %13.2fx %21.2f\n",
			name, nf, vols, 9, 4*(nf-3), rel, baseRes.Time*rel)
	}
	fmt.Println("(the registry makes the sweep extensible: a new equation set only has")
	fmt.Println(" to register a factory to appear in this table and in cmd/dns -system)")

	fmt.Println("\n=== what-if: pencil count sensitivity at 18432³ (ablation) ===")
	for _, np := range []int{4, 6, 8, 12} {
		cfg := core.DefaultPerf(18432, 3072, 2, core.PerSlab)
		cfg.NP = np
		r := core.SimulateGPUStep(cfg)
		fmt.Printf("np=%-3d time/step %.2f s\n", np, r.Time)
	}
	fmt.Println("(more pencils = finer batching overhead but unchanged slab-message size;")
	fmt.Println(" the paper picks the minimum np that fits GPU memory)")
}
