// Forced isotropic turbulence — the production workload of the paper,
// at laptop scale: a 48³ simulation driven by the "forced-ns" system
// (stochastic large-scale forcing at a prescribed injection rate) to a
// statistically stationary state on the asynchronous transform engine,
// reporting the standard single-time statistics and an ASCII energy
// spectrum.
package main

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/spectral"
)

func main() {
	const (
		n     = 48
		ranks = 4
		nu    = 0.008
		dt    = 0.004
		steps = 60
	)
	fmt.Printf("forced isotropic turbulence: %d³, ν=%g, %d RK2 steps on the async engine\n\n", n, nu, steps)

	var spec []float64
	var st spectral.Stats
	var eHist []float64
	mpi.Run(ranks, func(c *mpi.Comm) {
		tr := core.NewAsyncSlabReal(c, n, core.Options{NP: 4, Granularity: core.PerSlab})
		defer tr.Close()
		s := spectral.New(c, n,
			spectral.WithNu(nu),
			spectral.WithScheme(spectral.RK2),
			spectral.WithDealias(spectral.Dealias23),
			spectral.WithForcing(2, 0.1),
			spectral.WithForcingNoise(1.0, 11),
			spectral.WithTransform(tr),
		)
		defer s.Close()
		s.SetRandomIsotropic(2.5, 0.6, 11)
		for i := 0; i < steps; i++ {
			s.Step(dt)
			e := s.Energy()
			if c.Rank() == 0 {
				eHist = append(eHist, e)
			}
		}
		sp := s.Spectrum()
		stat := s.Statistics()
		if c.Rank() == 0 {
			spec = sp
			st = stat
		}
	})

	fmt.Println("energy history (stochastic forcing feeds the large scales):")
	for i := 9; i < len(eHist); i += 10 {
		fmt.Printf("  t=%.3f  E=%.5f\n", float64(i+1)*dt, eHist[i])
	}
	fmt.Printf("\nstationary statistics:\n")
	fmt.Printf("  E=%.4f  ε=%.4f  u'=%.4f  λ=%.4f  Re_λ=%.1f  η=%.4f  kmaxη=%.2f  T_E=%.2f\n\n",
		st.Energy, st.Dissipation, st.URMS, st.TaylorScale, st.ReLambda,
		st.Kolmogorov, st.KMaxEta, st.IntegralT)

	fmt.Println("energy spectrum E(k) (log scale, '#' bars):")
	maxLog := math.Inf(-1)
	minLog := math.Inf(1)
	kmax := n / 3
	for k := 1; k <= kmax; k++ {
		if spec[k] > 0 {
			l := math.Log10(spec[k])
			maxLog = math.Max(maxLog, l)
			minLog = math.Min(minLog, l)
		}
	}
	for k := 1; k <= kmax; k++ {
		width := 0
		if spec[k] > 0 {
			width = int(50 * (math.Log10(spec[k]) - minLog + 0.5) / (maxLog - minLog + 0.5))
		}
		if width < 0 {
			width = 0
		}
		fmt.Printf("  k=%2d %10.3e |%s\n", k, spec[k], strings.Repeat("#", width))
	}
	fmt.Println("\n(the spectrum peaks at the forced shells and falls steeply toward the")
	fmt.Println(" dealiasing cutoff — the resolved-dissipation regime of a well-resolved DNS)")
}
