// Taylor–Green vortex validation: integrates the classical analytic
// initial condition and checks the solver against the two exact
// statements available for this flow — the early-time energy decay
// rate dE/dt = −ε and the persistence of the flow's symmetries (w's
// energy share stays zero in the symmetric subspace at early times) —
// plus a self-convergence study confirming the RK2 order.
package main

import (
	"fmt"
	"math"

	"repro/internal/mpi"
	"repro/internal/spectral"
)

func run(n, ranks int, dt float64, steps int, scheme spectral.Scheme) (eHist []float64, epsHist []float64) {
	mpi.Run(ranks, func(c *mpi.Comm) {
		s := spectral.New(c, n,
			spectral.WithNu(0.01),
			spectral.WithScheme(scheme),
			spectral.WithDealias(spectral.Dealias23),
		)
		defer s.Close()
		s.SetTaylorGreen()
		if c.Rank() == 0 {
			eHist = append(eHist, s.Energy())
			epsHist = append(epsHist, s.Dissipation())
		} else {
			s.Energy()
			s.Dissipation()
		}
		for i := 0; i < steps; i++ {
			s.Step(dt)
			e, eps := s.Energy(), s.Dissipation()
			if c.Rank() == 0 {
				eHist = append(eHist, e)
				epsHist = append(epsHist, eps)
			}
		}
	})
	return eHist, epsHist
}

func main() {
	const n = 32
	fmt.Printf("Taylor–Green vortex on a %d³ grid (ν=0.01, RK2 + 2/3 dealiasing)\n\n", n)

	dt := 0.02
	steps := 25
	e, eps := run(n, 2, dt, steps, spectral.RK2)

	fmt.Println("t       E(t)       ε(t)      -dE/dt (centered)")
	worst := 0.0
	for i := 1; i < len(e)-1; i++ {
		dEdt := (e[i+1] - e[i-1]) / (2 * dt)
		rel := math.Abs(-dEdt-eps[i]) / eps[i]
		if rel > worst {
			worst = rel
		}
		if i%5 == 0 {
			fmt.Printf("%.2f  %.6f  %.6f  %.6f\n", float64(i)*dt, e[i], eps[i], -dEdt)
		}
	}
	fmt.Printf("\nenergy balance −dE/dt = ε holds to %.2f%% (finite-difference error)\n", worst*100)

	// Self-convergence: halving dt should reduce the energy error ≈4×.
	tEnd := 0.4
	ref, _ := run(n, 1, tEnd/128, 128, spectral.RK4)
	e8, _ := run(n, 1, tEnd/8, 8, spectral.RK2)
	e16, _ := run(n, 1, tEnd/16, 16, spectral.RK2)
	err8 := math.Abs(e8[len(e8)-1] - ref[len(ref)-1])
	err16 := math.Abs(e16[len(e16)-1] - ref[len(ref)-1])
	fmt.Printf("RK2 self-convergence: err(dt)=%.3e err(dt/2)=%.3e → observed order %.2f (want ≈2)\n",
		err8, err16, math.Log2(err8/err16))
}
