package repro

import (
	"io"

	"repro/internal/fft"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/par"
	"repro/internal/pool"
	"repro/internal/trace"
)

// --- Runtime metrics -------------------------------------------------------

// MetricsRegistry is a concurrency-safe registry of counters, gauges
// and histograms that the runtime layers (collectives, device streams,
// FFT plans, transform pipelines, the solver) record into.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time copy of a registry's metrics.
type MetricsSnapshot = metrics.Snapshot

// MetricEntry is one metric inside a snapshot.
type MetricEntry = metrics.Entry

// NoRank labels a metric not attributed to a single MPI rank.
const NoRank = metrics.NoRank

// NewMetricsRegistry creates an enabled, empty registry for callers
// who want instrumentation isolated from the process-wide default.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// DefaultMetrics returns the process-wide registry that Run/TryRun
// install on every world. It starts disabled; call EnableMetrics to
// begin recording.
func DefaultMetrics() *MetricsRegistry { return metrics.Default() }

// EnableMetrics turns on the process-wide registry and returns it.
func EnableMetrics() *MetricsRegistry { return metrics.Enable() }

// DisableMetrics stops recording into the process-wide registry.
func DisableMetrics() { metrics.Disable() }

// RunWithMetrics is Run with an explicit registry for the world and an
// error contract (panics surface as *RankError, stalls as
// *StallError).
func RunWithMetrics(p int, reg *MetricsRegistry, fn func(*Comm), opts ...RunOption) error {
	return mpi.RunWith(p, reg, fn, opts...)
}

// MetricsSnapshotNow publishes the FFT-layer, buffer-arena and
// worker-team totals (fft.*, pool.hit/miss, par.workers.*) into the
// default registry and returns its snapshot — the one-call way to read
// everything the runtime has recorded.
func MetricsSnapshotNow() MetricsSnapshot {
	fft.PublishMetrics(metrics.Default())
	pool.PublishMetrics(metrics.Default())
	par.PublishMetrics(metrics.Default())
	return metrics.Default().Snapshot()
}

// WriteChromeTraceWithMetrics writes timelines plus a metrics snapshot
// as one Chrome-tracing JSON file (chrome://tracing, Perfetto).
func WriteChromeTraceWithMetrics(w io.Writer, tls []Timeline, snap MetricsSnapshot) error {
	return trace.WriteChromeTraceWithMetrics(w, tls, snap)
}
