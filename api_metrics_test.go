package repro_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro"
)

// TestMetricsEndToEnd drives one asynchronous RK2 step with an
// explicit registry and checks that the runtime recorded real traffic:
// non-zero all-to-all bytes on every rank and per-phase step timings
// (the measurement the paper's Table 3 / Fig 10 reporting rests on).
func TestMetricsEndToEnd(t *testing.T) {
	const p = 2
	const n = 16
	reg := repro.NewMetricsRegistry()
	err := repro.RunWithMetrics(p, reg, func(c *repro.Comm) {
		tr := repro.NewAsync(c, n,
			repro.WithNP(2),
			repro.WithGranularity(repro.PerPencil),
			repro.WithMetrics(reg),
		)
		defer tr.Close()
		s := repro.NewSolver(c, n,
			repro.WithNu(0.02),
			repro.WithScheme(repro.RK2),
			repro.WithDealias(repro.Dealias23),
			repro.WithTransform(tr),
		)
		s.SetTaylorGreen()
		s.Step(0.004)
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for r := 0; r < p; r++ {
		if e, ok := snap.Get("mpi.a2a.bytes", r); !ok || e.Value == 0 {
			t.Errorf("rank %d: no all-to-all bytes recorded", r)
		}
		if e, ok := snap.Get("phase.step", r); !ok || e.Count == 0 || e.Value <= 0 {
			t.Errorf("rank %d: no step wall time recorded", r)
		}
		if e, ok := snap.Get("phase.pipeline", r); !ok || e.Count == 0 {
			t.Errorf("rank %d: no pipeline phase samples recorded", r)
		}
		if e, ok := snap.Get("gpu.h2d.bytes", r); !ok || e.Value == 0 {
			t.Errorf("rank %d: no host-to-device bytes recorded", r)
		}
	}
	// The paper's reduction: one row per metric, max over ranks.
	red := snap.MaxOverRanks()
	if e, ok := red.Get("phase.step", repro.NoRank); !ok || e.Value <= 0 {
		t.Error("max-over-ranks reduction lost phase.step")
	}

	// The snapshot merges into a Chrome trace alongside timelines.
	var buf bytes.Buffer
	if err := repro.WriteChromeTraceWithMetrics(&buf, repro.Fig10()[:1], snap); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ph":"C"`, "mpi.a2a.bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %q", want)
		}
	}
}

// TestTryRunSurfacesRankError checks the public error contract: a
// panicking rank comes back as a typed *RankError, not a crash.
func TestTryRunSurfacesRankError(t *testing.T) {
	err := repro.TryRun(2, func(c *repro.Comm) {
		if c.Rank() == 1 {
			panic("kaboom")
		}
		c.Barrier()
	})
	var re *repro.RankError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not *RankError", err)
	}
	if re.Rank != 1 {
		t.Fatalf("RankError.Rank = %d, want 1", re.Rank)
	}
}
